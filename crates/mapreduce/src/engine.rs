//! The discrete-event MapReduce execution engine.
//!
//! [`Engine::run`] simulates one job deployment end to end: input upload over
//! the customer uplink, map tasks scheduled onto a (possibly time-varying)
//! set of nodes, the shuffle/reduce phase, and the final result download. It
//! meters every chargeable operation through a
//! [`conductor_cloud::BillingAccount`] and records the task-completion and
//! node-allocation timelines plotted in Figure 12.
//!
//! Since the event-kernel refactor the engine is a thin driver: all job
//! state lives in a [`crate::execution::JobExecution`] process advanced by
//! wakeups on a private [`conductor_sim::Simulator`]. The fleet-level
//! service in `conductor-core` reuses the same process type to run many
//! jobs on one shared clock.

use crate::cluster::NodeAllocation;
use crate::execution::{JobEvent, JobExecution, JobPhase, SessionPricing};
use crate::scheduler::Scheduler;
use crate::workload::JobSpec;
use conductor_cloud::{Catalog, CostBreakdown};
use conductor_sim::Simulator;
use serde::{Deserialize, Serialize};

/// Where a piece of data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataLocation {
    /// The customer's own site (input source / output destination).
    ClientSite,
    /// An S3-style object store.
    S3,
    /// The virtual disk of a cloud instance.
    InstanceDisk,
    /// A disk in the customer's local cluster.
    LocalDisk,
}

/// Options describing one deployment strategy (the knobs that differ between
/// "Conductor", "Hadoop upload first", "Hadoop direct" and "Hadoop S3" in
/// §6.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentOptions {
    /// Label used in reports.
    pub name: String,
    /// Customer uplink bandwidth in GB/h.
    pub uplink_gbph: f64,
    /// Node allocation schedule (per instance type, step function over time).
    pub node_schedule: Vec<NodeAllocation>,
    /// Where the input is uploaded before/while processing: a list of
    /// `(location, fraction_of_input)` entries. Fractions that do not sum to
    /// one leave the remainder at the client site (to be read remotely).
    pub upload_plan: Vec<(DataLocation, f64)>,
    /// `true` when processing must wait for the entire upload to finish
    /// ("Hadoop upload first" and "Hadoop S3"); `false` enables streamed
    /// processing.
    pub upload_before_processing: bool,
    /// Multiplier on node throughput when the input is read from S3 instead
    /// of a local disk (S3 read path overhead).
    pub s3_throughput_factor: f64,
    /// Job deadline in hours, if any (reported, not enforced).
    pub deadline_hours: Option<f64>,
    /// Object size used when translating uploads into PUT/GET requests (MB).
    pub object_size_mb: f64,
    /// Safety cap on simulated hours; the run fails if the job has not
    /// finished by then.
    pub max_hours: f64,
}

impl DeploymentOptions {
    /// Reasonable defaults for a cloud-only deployment: 16 Mbit/s uplink,
    /// streamed processing, data on instance disks.
    pub fn new(name: impl Into<String>, uplink_gbph: f64) -> Self {
        Self {
            name: name.into(),
            uplink_gbph,
            node_schedule: Vec::new(),
            upload_plan: vec![(DataLocation::InstanceDisk, 1.0)],
            upload_before_processing: false,
            s3_throughput_factor: 0.7,
            deadline_hours: None,
            object_size_mb: 64.0,
            max_hours: 200.0,
        }
    }

    /// Adds a node-allocation step.
    pub fn with_nodes(mut self, instance_type: &str, nodes: usize, from_hour: f64) -> Self {
        self.node_schedule.push(NodeAllocation {
            from_hour,
            instance_type: instance_type.into(),
            nodes,
        });
        self
    }
}

/// Per-phase timing of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Hours until the last uploaded split became available in the cloud
    /// (zero when everything is read remotely).
    pub upload_hours: f64,
    /// Hour at which the last map task completed.
    pub map_done_at: f64,
    /// Hour at which the last reduce task completed.
    pub reduce_done_at: f64,
    /// Hours spent downloading the final output.
    pub download_hours: f64,
}

/// The result of simulating one deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Deployment label.
    pub name: String,
    /// End-to-end completion time in hours (including the result download).
    pub completion_hours: f64,
    /// Per-phase timing.
    pub phases: PhaseBreakdown,
    /// Total monetary cost in USD.
    pub total_cost: f64,
    /// Per-category cost breakdown (Figure 5).
    pub cost_breakdown: CostBreakdown,
    /// Whether the deadline was met (`None` when no deadline was set).
    pub met_deadline: Option<bool>,
    /// `(hour, cumulative completed tasks)` samples (Figure 12b).
    pub task_timeline: Vec<(f64, usize)>,
    /// `(hour, allocated nodes)` samples (Figure 12a).
    pub allocation_timeline: Vec<(f64, usize)>,
    /// Total number of tasks in the job.
    pub total_tasks: usize,
    /// GB shipped from the customer into the cloud.
    pub wan_in_gb: f64,
    /// GB shipped from the cloud back to the customer.
    pub wan_out_gb: f64,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The job did not finish within `max_hours` simulated hours (typically a
    /// schedule with no nodes).
    DidNotFinish {
        /// Hours simulated before giving up.
        simulated_hours: f64,
        /// Tasks completed at that point.
        completed_tasks: usize,
    },
    /// The deployment options are inconsistent.
    InvalidOptions(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DidNotFinish { simulated_hours, completed_tasks } => write!(
                f,
                "job did not finish within {simulated_hours} simulated hours ({completed_tasks} tasks done)"
            ),
            EngineError::InvalidOptions(msg) => write!(f, "invalid deployment options: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The simulation engine. Holds the catalog so multiple runs can share it.
#[derive(Debug, Clone)]
pub struct Engine {
    catalog: Catalog,
}

impl Engine {
    /// Creates an engine over a service catalog.
    pub fn new(catalog: Catalog) -> Self {
        Self { catalog }
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Simulates one deployment of `spec` under `options`, with `scheduler`
    /// deciding task placement.
    ///
    /// The run is a standard discrete-event loop: the job seeds the kernel
    /// with its upload/schedule wakeups, and every popped batch advances the
    /// [`JobExecution`] process (retire finishes, reconcile the cluster,
    /// dispatch tasks) until the download completes.
    pub fn run(
        &self,
        spec: &JobSpec,
        options: &DeploymentOptions,
        scheduler: &(dyn Scheduler + Sync),
    ) -> Result<ExecutionReport, EngineError> {
        let job = JobExecution::new(
            &self.catalog,
            spec,
            options.clone(),
            Box::new(scheduler),
            SessionPricing::OnDemand,
        )?;
        drive_to_completion(job)
    }
}

/// Drives one [`JobExecution`] on a private simulator until it finishes (or
/// fails). Shared by [`Engine::run`] and the engine-level tests; the
/// fleet-level service implements the same loop over many jobs at once.
pub(crate) fn drive_to_completion(
    mut job: JobExecution<'_>,
) -> Result<ExecutionReport, EngineError> {
    let mut sim: Simulator<JobEvent> = Simulator::new();
    sim.schedule_all(
        job.initial_events()
            .into_iter()
            .map(|(t, e)| (t, e.class(), e)),
    );
    let mut batch = Vec::new();
    loop {
        let Some(now) = sim.pop_due(&mut batch) else {
            // Nothing is pending and the job never finished.
            return Err(EngineError::DidNotFinish {
                simulated_hours: sim.now(),
                completed_tasks: job.completed_tasks(),
            });
        };
        if matches!(job.phase(), JobPhase::Processing) && now > job.max_hours() {
            return Err(EngineError::DidNotFinish {
                simulated_hours: job.max_hours(),
                completed_tasks: job.completed_tasks(),
            });
        }
        let follow_ups = job.on_wakeup(now);
        sim.schedule_all(follow_ups.into_iter().map(|(t, e)| (t, e.class(), e)));
        if job.is_done() {
            return Ok(job.into_report());
        }
        if matches!(job.phase(), JobPhase::Processing) && job.next_event_hours(now).is_none() {
            // Nothing is running and nothing will change: the job is stuck.
            return Err(EngineError::DidNotFinish {
                simulated_hours: now,
                completed_tasks: job.completed_tasks(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{LocalityScheduler, PlanFollowingScheduler};
    use crate::workload::Workload;
    use conductor_cloud::CostCategory;

    fn engine() -> Engine {
        Engine::new(Catalog::aws_with_local_cluster(5))
    }

    fn uplink_16mbit() -> f64 {
        conductor_cloud::catalog::mbps_to_gb_per_hour(16.0)
    }

    /// The Conductor cloud-only deployment of §6.2: 16 m1.large nodes storing
    /// data on their own disks, streamed processing.
    fn conductor_options() -> DeploymentOptions {
        DeploymentOptions {
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("conductor", uplink_16mbit()).with_nodes("m1.large", 16, 0.0)
        }
    }

    #[test]
    fn conductor_style_run_meets_six_hour_deadline() {
        let spec = Workload::KMeans32Gb.spec();
        let report = engine()
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        assert_eq!(
            report.met_deadline,
            Some(true),
            "completion {}",
            report.completion_hours
        );
        assert!(
            report.completion_hours > 4.0,
            "unrealistically fast: {}",
            report.completion_hours
        );
        assert_eq!(report.total_tasks, 528);
        assert_eq!(report.task_timeline.last().unwrap().1, 528);
    }

    #[test]
    fn upload_first_is_slower_than_streamed() {
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let streamed = eng
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        // Upload to a single node first, then 100 nodes process.
        let upload_hours = 32.0 / uplink_16mbit();
        let upload_first = DeploymentOptions {
            upload_before_processing: true,
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("hadoop-upload-first", uplink_16mbit())
                .with_nodes("m1.large", 1, 0.0)
                .with_nodes("m1.large", 100, upload_hours)
        };
        let uf = eng.run(&spec, &upload_first, &LocalityScheduler).unwrap();
        assert!(uf.completion_hours > streamed.completion_hours);
    }

    #[test]
    fn hadoop_s3_costs_roughly_double_the_others() {
        // §6.2: the Hadoop-S3 option finishes processing in just over an hour
        // but pays two full hours for each of 100 instances, roughly doubling
        // the cost of the other options.
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let upload_hours = 32.0 / uplink_16mbit();
        let s3_opts = DeploymentOptions {
            upload_plan: vec![(DataLocation::S3, 1.0)],
            upload_before_processing: true,
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("hadoop-s3", uplink_16mbit()).with_nodes(
                "m1.large",
                100,
                upload_hours,
            )
        };
        let s3_report = eng.run(&spec, &s3_opts, &LocalityScheduler).unwrap();
        let conductor = eng
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        assert!(
            s3_report.total_cost > 1.6 * conductor.total_cost,
            "s3 {} vs conductor {}",
            s3_report.total_cost,
            conductor.total_cost
        );
        // Processing itself (after upload) took between 1 and 2 hours.
        let processing = s3_report.phases.map_done_at - upload_hours;
        assert!(
            processing > 1.0 && processing < 2.0,
            "processing {processing}"
        );
    }

    #[test]
    fn fewer_nodes_miss_the_deadline_more_nodes_cost_more() {
        // Figure 7: 11 nodes miss the 6h deadline, 21 nodes cost more than 16.
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let sched = PlanFollowingScheduler::cloud_only_defaults();
        let run = |nodes: usize| {
            let opts = DeploymentOptions {
                deadline_hours: Some(6.0),
                ..DeploymentOptions::new(format!("{nodes}-nodes"), uplink_16mbit())
                    .with_nodes("m1.large", nodes, 0.0)
            };
            eng.run(&spec, &opts, &sched).unwrap()
        };
        let r11 = run(11);
        let r16 = run(16);
        let r21 = run(21);
        assert_eq!(r11.met_deadline, Some(false));
        assert_eq!(r16.met_deadline, Some(true));
        assert_eq!(r21.met_deadline, Some(true));
        assert!(r21.total_cost > r16.total_cost);
    }

    #[test]
    fn plan_following_scheduler_refuses_unplanned_remote_reads() {
        // All data stays at the client site but the plan only allows disk/S3
        // reads: with no other data source the job can never finish.
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            upload_plan: vec![],
            ..DeploymentOptions::new("stuck", uplink_16mbit()).with_nodes("m1.large", 4, 0.0)
        };
        let err = engine()
            .run(&spec, &opts, &PlanFollowingScheduler::cloud_only_defaults())
            .unwrap_err();
        assert!(matches!(err, EngineError::DidNotFinish { .. }));
        // The locality scheduler happily reads remotely and finishes.
        let ok = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert!(ok.completion_hours.is_finite());
    }

    #[test]
    fn local_cluster_runs_are_free() {
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            upload_plan: vec![],
            max_hours: 400.0,
            ..DeploymentOptions::new("local-only", uplink_16mbit()).with_nodes("local", 5, 0.0)
        };
        let report = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert_eq!(report.cost_breakdown.get(CostCategory::Computation), 0.0);
        // Only the result download is charged.
        assert!(report.total_cost < 1.0, "cost {}", report.total_cost);
        // 5 nodes at 0.44 GB/h cannot meet a 6h deadline for 32 GB.
        assert!(report.completion_hours > 6.0);
    }

    #[test]
    fn local_cluster_cap_is_enforced() {
        // Asking for 50 "local" nodes only yields the 5 that exist.
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            upload_plan: vec![],
            max_hours: 400.0,
            ..DeploymentOptions::new("local-capped", uplink_16mbit()).with_nodes("local", 50, 0.0)
        };
        let report = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert!(report.allocation_timeline.iter().all(|&(_, n)| n <= 5));
    }

    #[test]
    fn schedule_increase_mid_job_is_reflected_in_timeline() {
        // Figure 12: start with 3 nodes, go to 16 after one hour, 18 after two.
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("adaptive", uplink_16mbit())
                .with_nodes("m1.large", 3, 0.0)
                .with_nodes("m1.large", 16, 1.0)
                .with_nodes("m1.large", 18, 2.0)
        };
        let report = engine()
            .run(&spec, &opts, &PlanFollowingScheduler::cloud_only_defaults())
            .unwrap();
        let max_nodes = report
            .allocation_timeline
            .iter()
            .map(|&(_, n)| n)
            .max()
            .unwrap();
        assert_eq!(max_nodes, 18);
        let early_nodes = report
            .allocation_timeline
            .iter()
            .filter(|&&(t, _)| t < 0.5)
            .map(|&(_, n)| n)
            .max()
            .unwrap();
        assert_eq!(early_nodes, 3);
    }

    #[test]
    fn cost_breakdown_covers_transfer_compute_and_storage() {
        let spec = Workload::KMeans32Gb.spec();
        let upload_hours = 32.0 / uplink_16mbit();
        let opts = DeploymentOptions {
            upload_plan: vec![(DataLocation::S3, 1.0)],
            upload_before_processing: true,
            ..DeploymentOptions::new("s3", uplink_16mbit()).with_nodes("m1.large", 16, upload_hours)
        };
        let report = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert!(report.cost_breakdown.get(CostCategory::NetworkTransfer) > 0.0);
        assert!(report.cost_breakdown.get(CostCategory::Computation) > 0.0);
        assert!(report.cost_breakdown.get(CostCategory::StorageS3) > 0.0);
        assert!((report.total_cost - report.cost_breakdown.total()).abs() < 1e-9);
        assert!((report.wan_in_gb - 32.0).abs() < 1e-6);
        assert!(report.wan_out_gb > 0.0);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let bad_uplink = DeploymentOptions::new("bad", 0.0);
        assert!(matches!(
            eng.run(&spec, &bad_uplink, &LocalityScheduler),
            Err(EngineError::InvalidOptions(_))
        ));
        let mut bad_frac = DeploymentOptions::new("bad", 1.0);
        bad_frac.upload_plan = vec![(DataLocation::S3, 0.8), (DataLocation::InstanceDisk, 0.8)];
        assert!(matches!(
            eng.run(&spec, &bad_frac, &LocalityScheduler),
            Err(EngineError::InvalidOptions(_))
        ));
        let bad_type = DeploymentOptions::new("bad", 1.0).with_nodes("m9.mega", 1, 0.0);
        assert!(matches!(
            eng.run(&spec, &bad_type, &LocalityScheduler),
            Err(EngineError::InvalidOptions(_))
        ));
    }

    #[test]
    fn task_timeline_is_monotonic() {
        let spec = Workload::KMeans32Gb.spec();
        let report = engine()
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        let mut prev_t = 0.0;
        let mut prev_c = 0;
        for &(t, c) in &report.task_timeline {
            assert!(t >= prev_t - 1e-9);
            assert!(c >= prev_c);
            prev_t = t;
            prev_c = c;
        }
    }
}
