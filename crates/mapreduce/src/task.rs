//! Tasks: the unit of scheduling in the MapReduce engine.

use crate::cluster::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a task within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// Map or Reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Processes one input split.
    Map,
    /// Processes one partition of the shuffled intermediate data.
    Reduce,
}

/// Lifecycle of a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskState {
    /// Input data is not yet at an acceptable location.
    WaitingForData,
    /// Ready to be assigned to a free slot.
    Runnable,
    /// Executing on a node; finishes at the recorded hour.
    Running {
        /// Node executing the task.
        node: NodeId,
        /// Simulation hour at which the task completes.
        finish_at: f64,
    },
    /// Finished at the recorded hour.
    Completed {
        /// Completion time in hours.
        at: f64,
    },
}

/// A schedulable unit of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier within the job.
    pub id: TaskId,
    /// Map or Reduce.
    pub kind: TaskKind,
    /// Amount of data the task processes, in GB.
    pub data_gb: f64,
    /// Current state.
    pub state: TaskState,
}

impl Task {
    /// Creates a task in the `WaitingForData` state.
    pub fn new(id: TaskId, kind: TaskKind, data_gb: f64) -> Self {
        Self {
            id,
            kind,
            data_gb,
            state: TaskState::WaitingForData,
        }
    }

    /// `true` once the task has completed.
    pub fn is_completed(&self) -> bool {
        matches!(self.state, TaskState::Completed { .. })
    }

    /// `true` while the task is executing.
    pub fn is_running(&self) -> bool {
        matches!(self.state, TaskState::Running { .. })
    }

    /// Completion hour, if completed.
    pub fn completed_at(&self) -> Option<f64> {
        match self.state {
            TaskState::Completed { at } => Some(at),
            _ => None,
        }
    }
}

/// Builds the task list for a job: `map_tasks` map tasks splitting
/// `input_gb` evenly, plus `reduce_tasks` reduce tasks splitting `shuffle_gb`
/// evenly.
pub fn build_tasks(
    map_tasks: usize,
    input_gb: f64,
    reduce_tasks: usize,
    shuffle_gb: f64,
) -> Vec<Task> {
    let mut tasks = Vec::with_capacity(map_tasks + reduce_tasks);
    let map_share = if map_tasks > 0 {
        input_gb / map_tasks as f64
    } else {
        0.0
    };
    for i in 0..map_tasks {
        tasks.push(Task::new(TaskId(i), TaskKind::Map, map_share));
    }
    let reduce_share = if reduce_tasks > 0 {
        shuffle_gb / reduce_tasks as f64
    } else {
        0.0
    };
    for i in 0..reduce_tasks {
        tasks.push(Task::new(
            TaskId(map_tasks + i),
            TaskKind::Reduce,
            reduce_share,
        ));
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_list_partitions_data_evenly() {
        let tasks = build_tasks(512, 32.0, 16, 0.64);
        assert_eq!(tasks.len(), 528);
        let map_total: f64 = tasks
            .iter()
            .filter(|t| t.kind == TaskKind::Map)
            .map(|t| t.data_gb)
            .sum();
        let reduce_total: f64 = tasks
            .iter()
            .filter(|t| t.kind == TaskKind::Reduce)
            .map(|t| t.data_gb)
            .sum();
        assert!((map_total - 32.0).abs() < 1e-9);
        assert!((reduce_total - 0.64).abs() < 1e-9);
    }

    #[test]
    fn task_ids_are_dense_and_unique() {
        let tasks = build_tasks(4, 1.0, 2, 0.1);
        let ids: Vec<usize> = tasks.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn state_transitions_and_queries() {
        let mut t = Task::new(TaskId(0), TaskKind::Map, 0.0625);
        assert!(!t.is_completed());
        assert!(!t.is_running());
        t.state = TaskState::Running {
            node: NodeId(3),
            finish_at: 1.5,
        };
        assert!(t.is_running());
        t.state = TaskState::Completed { at: 1.5 };
        assert!(t.is_completed());
        assert_eq!(t.completed_at(), Some(1.5));
    }

    #[test]
    fn zero_task_jobs_are_empty() {
        assert!(build_tasks(0, 0.0, 0, 0.0).is_empty());
    }
}
