//! One job's execution as a process on the discrete-event kernel.
//!
//! [`JobExecution`] holds the full runtime state of one MapReduce
//! deployment — tasks, splits, cluster membership, rental sessions and the
//! tenant's [`BillingAccount`] — and advances it in response to *wakeups*
//! scheduled on a [`conductor_sim::Simulator`]: split-upload completions,
//! node-schedule steps, task finishes and the final result download. The
//! single-job [`crate::engine::Engine`] drives one `JobExecution` on a
//! private simulator; the fleet-level `ConductorService` in
//! `conductor-core` drives many of them on one shared clock, which is what
//! makes multi-job contention over a shared spot market and catalog
//! possible.
//!
//! # The wakeup-handler protocol
//!
//! Events are deliberately *payload-free wakeups*: every handler decision
//! (which splits are available, how many nodes the schedule wants, which
//! tasks finished) is derived from the state and the current time, with the
//! same `1e-9` tolerances ([`conductor_sim::TIME_EPSILON`]) the original
//! monolithic loop used. That is what guarantees the event-driven
//! execution reproduces the old engine's reports bit for bit, and it makes
//! the contract between driver and process small:
//!
//! 1. Seed the kernel with [`JobExecution::initial_events`] (kickoff,
//!    schedule steps, split arrivals), each tagged with its
//!    [`JobEvent::class`] so simultaneous events settle in cause-order.
//! 2. On every due wakeup call [`JobExecution::on_wakeup`], which settles
//!    the instant — retire finished tasks, reconcile the cluster against
//!    the node schedule (opening/closing billed rental sessions),
//!    dispatch runnable work — and returns the follow-up wakeups
//!    (task finishes, the download completion) to push back on the heap.
//! 3. Between wakeups, [`JobExecution::next_event_hours`] names the next
//!    instant anything can change; `None` with work remaining means the
//!    job is genuinely stuck and the driver should [`JobExecution::abort`]
//!    it (the accrued spend stays on the bill).
//!
//! Dispatch itself is index-driven: pending tasks are bucketed per data
//! location (maps) plus one reduce set, so a wakeup pays for the few
//! lowest-index candidates instead of a full O(tasks · idle nodes) scan —
//! the distinction that keeps fleet-churn simulations flat as executions
//! grow.
//!
//! # Spot revocations
//!
//! Under [`SessionPricing::Spot`] the shared market can take the cluster
//! away: the fleet driver converts out-bid hours into calls to
//! [`JobExecution::kill_cloud_nodes`] (sessions closed without charging
//! the terminated partial hour, interrupted tasks returned to the runnable
//! set, the surviving schedule re-spliced past the blackout), while
//! reconciliation refuses to open new sessions until the price re-admits
//! the bid. Work the market displaced can outlive the plan's schedule;
//! the straggler extension re-raises the last allocation instead of
//! stranding it.

use crate::cluster::{nodes_at, Cluster, NodeAllocation, NodeId};
use crate::engine::{
    DataLocation, DeploymentOptions, EngineError, ExecutionReport, PhaseBreakdown,
};
use crate::scheduler::{Scheduler, SchedulerSnapshot};
use crate::task::{build_tasks, Task, TaskKind, TaskState};
use crate::workload::JobSpec;
use conductor_cloud::{BillingAccount, Catalog, SpotMarket, TransferDirection};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Time tolerance for simultaneity, shared with the kernel.
const EPS: f64 = conductor_sim::TIME_EPSILON;

/// Wakeup kinds a job schedules for itself. All are pure wakeups — the
/// handler re-derives what is due from state and time — so replaying them
/// in any batching that respects time order yields identical executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// Initial wakeup at the job's (relative) hour zero.
    Kickoff,
    /// An input split finishes uploading around this time.
    SplitAvailable,
    /// The node-allocation schedule has a step around this time.
    ScheduleChange,
    /// A running task finishes around this time.
    TaskFinish,
    /// The result download completes; the job is finished.
    DownloadDone,
}

impl JobEvent {
    /// Deterministic ordering class among simultaneous events (data arrives
    /// before allocation steps before task finishes before completion).
    pub fn class(self) -> u8 {
        match self {
            JobEvent::Kickoff => 0,
            JobEvent::SplitAvailable => 0,
            JobEvent::ScheduleChange => 1,
            JobEvent::TaskFinish => 2,
            JobEvent::DownloadDone => 3,
        }
    }
}

/// How rental sessions opened by this job are priced — and, for spot
/// sessions, when the market refuses or revokes them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SessionPricing {
    /// Every session pays the catalog's on-demand price and is never
    /// refused or revoked.
    OnDemand,
    /// Sessions on cloud nodes pay the shared spot market's price at the
    /// absolute hour the session starts. `start_offset_hours` is the job's
    /// start time on the fleet clock, so concurrent tenants price against
    /// the *same* trace hours. While the spot price sits strictly above
    /// `bid`, new cloud nodes cannot be acquired (the market refuses the
    /// request), and the fleet driver turns the out-bid hours into
    /// revocation events that terminate the running ones
    /// ([`JobExecution::kill_cloud_nodes`]).
    Spot {
        /// The shared market (one per fleet).
        market: SpotMarket,
        /// Job start on the fleet clock, in hours.
        start_offset_hours: f64,
        /// Maximum bid per instance-hour. A rational tenant bids at most
        /// the on-demand price (paying more would never be worth it), so
        /// fleet drivers default to that ceiling.
        bid: f64,
    },
}

impl SessionPricing {
    /// The trace hour on the fleet clock corresponding to job-relative
    /// hour `now` (nudged by [`EPS`] so an event scheduled *at* an hour
    /// boundary lands in that hour despite float summation error).
    fn trace_hour(start_offset_hours: f64, now: f64) -> usize {
        (start_offset_hours + now + EPS).floor().max(0.0) as usize
    }

    fn price_for(&self, itype: &conductor_cloud::InstanceType, now: f64) -> f64 {
        match self {
            SessionPricing::OnDemand => itype.hourly_price,
            SessionPricing::Spot {
                market,
                start_offset_hours,
                ..
            } => {
                if itype.is_local() {
                    0.0
                } else {
                    let hour = Self::trace_hour(*start_offset_hours, now);
                    // A rational tenant never pays above on-demand.
                    market.price_at(hour).min(itype.hourly_price)
                }
            }
        }
    }

    /// `true` when the market would refuse a request for more `itype`
    /// nodes at job-relative hour `now` (spot price strictly above the
    /// bid). On-demand sessions and local nodes are never refused.
    fn acquisition_blocked(&self, itype: &conductor_cloud::InstanceType, now: f64) -> bool {
        match self {
            SessionPricing::OnDemand => false,
            SessionPricing::Spot {
                market,
                start_offset_hours,
                bid,
            } => {
                !itype.is_local()
                    && market.out_bid_at(Self::trace_hour(*start_offset_hours, now), *bid)
            }
        }
    }

    /// If the market is currently refusing requests at job-relative hour
    /// `now`, the job-relative hour at which the spot price next comes
    /// back down to the bid (a request made then is granted). `None` when
    /// nothing is blocked — or when the trace never recovers, in which
    /// case the job really is starved for good.
    fn recovery_hours(&self, now: f64) -> Option<f64> {
        let SessionPricing::Spot {
            market,
            start_offset_hours,
            bid,
        } = self
        else {
            return None;
        };
        let hour = Self::trace_hour(*start_offset_hours, now);
        if !market.out_bid_at(hour, *bid) {
            return None;
        }
        let recovery = market.next_acceptance(hour + 1, *bid)?;
        Some(recovery as f64 - start_offset_hours)
    }
}

/// Which lifecycle phase the job is in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Uploading/processing on the cluster.
    Processing,
    /// All tasks done; the result download completes at the recorded hour.
    Downloading {
        /// Absolute (job-relative) completion hour.
        completion: f64,
    },
    /// Finished; the report is available.
    Done,
}

/// A monitor's view of one running job (fleet adaptation input).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionProgress {
    /// Tasks completed so far.
    pub completed_tasks: usize,
    /// Total tasks in the job.
    pub total_tasks: usize,
    /// Input GB whose map task has completed.
    pub map_done_gb: f64,
    /// Map tasks not yet completed.
    pub map_remaining: usize,
    /// Tasks currently running.
    pub running_tasks: usize,
    /// GB of input available per location at the observation time (splits
    /// whose upload has finished).
    pub stored_gb: BTreeMap<DataLocation, f64>,
    /// Integral of allocated nodes over hours `[0, now]` — the node-hours
    /// actually fielded, for deriving observed per-node throughput.
    pub allocated_node_hours: f64,
}

/// A split of the input data with its upload destination and availability
/// time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Split {
    location: DataLocation,
    available_at: f64,
    gb: f64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Running {
    task_idx: usize,
    node: NodeId,
    finish_at: f64,
    /// WAN gigabytes consumed by this task (remote reads from the client
    /// site).
    wan_gb: f64,
    /// GET requests against S3 issued by this task.
    s3_gets: u64,
    /// `true` when the task ran on a rented cloud node (its share of the
    /// output will have to be downloaded over the WAN).
    on_cloud_node: bool,
}

/// The full runtime state of one deployment, advanced by wakeups.
pub struct JobExecution<'a> {
    catalog: Catalog,
    spec: JobSpec,
    options: DeploymentOptions,
    scheduler: Box<dyn Scheduler + Send + 'a>,
    pricing: SessionPricing,

    billing: BillingAccount,
    cluster: Cluster,
    sessions: BTreeMap<NodeId, u64>,
    tasks: Vec<Task>,
    splits: Vec<Split>,
    running: Vec<Running>,
    schedule_points: Vec<f64>,

    // ---- dispatch index -------------------------------------------------
    // `dispatch` used to scan every task for every idle node — O(tasks ·
    // idle nodes) per wakeup, the fleet-churn hot path. The index keeps
    // exactly the dispatchable tasks, bucketed the way the scan consumed
    // them: pending map tasks by the location their input is available at,
    // pending reduce tasks in one set (their location is a function of the
    // node). Sets are ordered, so "lowest task index at this location" is
    // `first()` — preserving the scan's deterministic tie-breaking.
    /// Pending map tasks whose input is available now, by location.
    runnable_maps: BTreeMap<DataLocation, BTreeSet<usize>>,
    /// Pending reduce tasks (dispatchable once `map_remaining == 0`).
    runnable_reduces: BTreeSet<usize>,
    /// `(available_at, task_idx, location)` for splits still uploading,
    /// sorted by availability; promoted into `runnable_maps` as the clock
    /// passes them.
    upload_pending: Vec<(f64, usize, DataLocation)>,
    /// First `upload_pending` entry not yet promoted.
    upload_cursor: usize,

    task_timeline: Vec<(f64, usize)>,
    completed: usize,
    map_remaining: usize,
    wan_in_extra: f64,
    total_s3_gets: u64,
    cloud_processed_gb: f64,
    phases: PhaseBreakdown,
    upload_done_at: f64,
    s3_gb: f64,
    /// Times the straggler extension re-raised the schedule (see
    /// [`Self::straggler_extensions`]); fleet drivers diff this across a
    /// wakeup to surface the extension as a typed event.
    straggler_extensions: usize,
    /// Bumped on every mutation of `options.node_schedule` (splices,
    /// straggler extensions, revocation shifts). Observers caching a
    /// derived view of the schedule (the fleet's incremental residual
    /// index) compare epochs instead of diffing the steps.
    schedule_epoch: u64,

    phase: JobPhase,
    report: Option<ExecutionReport>,
}

impl std::fmt::Debug for JobExecution<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobExecution")
            .field("name", &self.options.name)
            .field("phase", &self.phase)
            .field("completed", &self.completed)
            .field("total_tasks", &self.tasks.len())
            .finish()
    }
}

impl<'a> JobExecution<'a> {
    /// Validates the deployment options and builds the initial state:
    /// tasks, the split upload timetable (billing the WAN upload), and the
    /// schedule-step markers.
    pub fn new(
        catalog: &Catalog,
        spec: &JobSpec,
        options: DeploymentOptions,
        scheduler: Box<dyn Scheduler + Send + 'a>,
        pricing: SessionPricing,
    ) -> Result<Self, EngineError> {
        validate(catalog, &options)?;

        let mut billing = BillingAccount::new(catalog.transfer);
        let tasks = build_tasks(
            spec.map_tasks(),
            spec.input_gb,
            spec.reduce_tasks,
            spec.shuffle_gb(),
        );
        let splits = plan_splits(spec, &options);
        // Only data headed for *cloud* storage crosses the customer uplink;
        // splits assigned to the local cluster's disks move over the LAN.
        let upload_done_at = splits
            .iter()
            .filter(|s| crosses_wan(s.location))
            .map(|s| s.available_at)
            .fold(0.0, f64::max);
        let uploaded_gb: f64 = splits
            .iter()
            .filter(|s| crosses_wan(s.location))
            .map(|s| s.gb)
            .sum();
        let s3_gb: f64 = splits
            .iter()
            .filter(|s| s.location == DataLocation::S3)
            .map(|s| s.gb)
            .sum();

        // Input transferred into the cloud during the upload phase is billed
        // immediately (it crosses the WAN exactly once).
        if uploaded_gb > 0.0 {
            billing.record_transfer(uploaded_gb, TransferDirection::In);
        }

        let mut schedule_points: Vec<f64> =
            options.node_schedule.iter().map(|a| a.from_hour).collect();
        schedule_points.sort_by(|a, b| a.partial_cmp(b).unwrap());
        schedule_points.dedup();

        let map_remaining = spec.map_tasks();
        let mut runnable_maps: BTreeMap<DataLocation, BTreeSet<usize>> = BTreeMap::new();
        let mut runnable_reduces = BTreeSet::new();
        let mut upload_pending: Vec<(f64, usize, DataLocation)> = Vec::new();
        for (idx, task) in tasks.iter().enumerate() {
            match task.kind {
                TaskKind::Map => {
                    let split = &splits[idx.min(splits.len().saturating_sub(1))];
                    if split.location != DataLocation::ClientSite && split.available_at > EPS {
                        upload_pending.push((split.available_at, idx, split.location));
                    } else {
                        runnable_maps.entry(split.location).or_default().insert(idx);
                    }
                }
                TaskKind::Reduce => {
                    runnable_reduces.insert(idx);
                }
            }
        }
        upload_pending.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        Ok(Self {
            catalog: catalog.clone(),
            spec: spec.clone(),
            phases: PhaseBreakdown {
                upload_hours: upload_done_at,
                ..Default::default()
            },
            options,
            scheduler,
            pricing,
            billing,
            cluster: Cluster::new(),
            sessions: BTreeMap::new(),
            tasks,
            splits,
            running: Vec::new(),
            schedule_points,
            runnable_maps,
            runnable_reduces,
            upload_pending,
            upload_cursor: 0,
            task_timeline: Vec::new(),
            completed: 0,
            map_remaining,
            wan_in_extra: 0.0,
            total_s3_gets: 0,
            cloud_processed_gb: 0.0,
            upload_done_at,
            s3_gb,
            straggler_extensions: 0,
            schedule_epoch: 0,
            phase: JobPhase::Processing,
            report: None,
        })
    }

    /// The wakeups to seed the kernel with: the kickoff at hour zero plus
    /// one marker per schedule step and distinct split-availability time.
    /// All times are job-relative hours.
    pub fn initial_events(&self) -> Vec<(f64, JobEvent)> {
        let mut events = vec![(0.0, JobEvent::Kickoff)];
        for &t in &self.schedule_points {
            if t > EPS {
                events.push((t, JobEvent::ScheduleChange));
            }
        }
        let mut avail: Vec<f64> = self
            .splits
            .iter()
            .filter(|s| s.location != DataLocation::ClientSite && s.available_at > EPS)
            .map(|s| s.available_at)
            .collect();
        avail.sort_by(|a, b| a.partial_cmp(b).unwrap());
        avail.dedup();
        for t in avail {
            events.push((t, JobEvent::SplitAvailable));
        }
        events
    }

    /// Which lifecycle phase the job is in.
    pub fn phase(&self) -> JobPhase {
        self.phase
    }

    /// `true` once the final download completed and the report is ready.
    pub fn is_done(&self) -> bool {
        self.phase == JobPhase::Done
    }

    /// Tasks completed so far.
    pub fn completed_tasks(&self) -> usize {
        self.completed
    }

    /// Safety cap on simulated hours (from the deployment options).
    pub fn max_hours(&self) -> f64 {
        self.options.max_hours
    }

    /// Deployment label.
    pub fn name(&self) -> &str {
        &self.options.name
    }

    /// The deployment options currently in force (the node schedule may
    /// have been spliced since construction).
    pub fn options(&self) -> &DeploymentOptions {
        &self.options
    }

    /// The node-allocation schedule currently in force, in job-relative
    /// hours. Fleet drivers read this to compute residual capacity.
    pub fn node_schedule(&self) -> &[NodeAllocation] {
        &self.options.node_schedule
    }

    /// Monotone counter bumped on every mutation of the node schedule.
    /// Equal epochs guarantee [`Self::node_schedule`] is unchanged, so a
    /// cached derivation of it (e.g. the fleet's residual-capacity index)
    /// can skip re-reading the steps.
    pub fn schedule_epoch(&self) -> u64 {
        self.schedule_epoch
    }

    /// The time of the next state change this job expects after `now`, or
    /// `None` when nothing is running and nothing will change (the job is
    /// stuck). Mirrors the event-horizon computation of the original
    /// monolithic loop, so stuck detection is independent of kernel
    /// bookkeeping.
    pub fn next_event_hours(&self, now: f64) -> Option<f64> {
        match self.phase {
            JobPhase::Processing => {
                let next_finish = self
                    .running
                    .iter()
                    .map(|r| r.finish_at)
                    .fold(f64::INFINITY, f64::min);
                let next_schedule = self
                    .schedule_points
                    .iter()
                    .copied()
                    .filter(|&t| t > now + EPS)
                    .fold(f64::INFINITY, f64::min);
                let next_split = self
                    .splits
                    .iter()
                    .filter(|s| {
                        s.location != DataLocation::ClientSite && s.available_at > now + EPS
                    })
                    .map(|s| s.available_at)
                    .fold(f64::INFINITY, f64::min);
                // A spot job starved by an out-bid market is not stuck: its
                // next state change is the hour the price readmits its bid.
                // `recovery_hours` is the cheap discriminator (`None` unless
                // the market is out-bid right now), so the schedule-demand
                // scan only runs during an actual blackout.
                let next_recovery = match self.pricing.recovery_hours(now) {
                    Some(recovery) if self.wants_more_cloud_nodes(now) => recovery,
                    _ => f64::INFINITY,
                };
                let next = next_finish
                    .min(next_schedule)
                    .min(next_split)
                    .min(next_recovery);
                next.is_finite().then_some(next)
            }
            JobPhase::Downloading { completion } => Some(completion),
            JobPhase::Done => None,
        }
    }

    /// Handles one wakeup batch at job-relative hour `now`: retires tasks
    /// that finished, reconciles cluster membership with the schedule,
    /// dispatches runnable tasks onto idle nodes, and — once every task has
    /// completed — finalizes billing and schedules the download completion.
    ///
    /// Returns the follow-up wakeups (task finishes, download completion)
    /// to push onto the kernel, in job-relative hours.
    pub fn on_wakeup(&mut self, now: f64) -> Vec<(f64, JobEvent)> {
        let mut out = Vec::new();
        match self.phase {
            JobPhase::Done => return out,
            JobPhase::Downloading { completion } => {
                if now + EPS >= completion {
                    self.phase = JobPhase::Done;
                }
                return out;
            }
            JobPhase::Processing => {}
        }

        self.retire_finished(now);
        self.reconcile_cluster(now, &mut out);
        self.dispatch(now, &mut out);
        if self.extend_for_stragglers(now) {
            // The extension must take effect *within* this wakeup: the
            // driver's stuck check runs right after, and a step at `now`
            // only helps if the nodes (or a recovery retry) exist by then.
            self.reconcile_cluster(now, &mut out);
            self.dispatch(now, &mut out);
        }

        if self.completed == self.tasks.len() {
            let completion = self.finalize(now);
            self.phase = JobPhase::Downloading { completion };
            out.push((completion, JobEvent::DownloadDone));
        }
        out
    }

    /// Work can outlive the node schedule: the plan's fluid model was
    /// optimistic, a revocation returned killed tasks to the runnable set,
    /// or an out-bid market delayed acquisitions — and the schedule's tail
    /// ramps to zero believing everything is done, stranding the
    /// stragglers (or the reduces whose map barrier opened late). When a
    /// job has nothing running, nothing scheduled, and tasks remaining,
    /// re-raise the last positive cloud allocation — capped at the
    /// straggler count — rather than abandoning paid-for work: a real
    /// orchestrator keeps its cluster until the job is done. A stuck state
    /// can never resolve on its own (every event source is derived from
    /// state), so this only ever converts a would-be failure into a
    /// limp-home completion; runs that complete on schedule — including
    /// every execution the engine-equivalence suite pins bit for bit —
    /// never reach it. The step function keeps the extension level in
    /// force from `now` on, so it cannot re-fire in a loop when dispatch
    /// (not capacity) is what's stuck.
    ///
    /// Returns `true` when a step was added (the caller re-reconciles and
    /// re-dispatches in the same wakeup).
    fn extend_for_stragglers(&mut self, now: f64) -> bool {
        if self.completed == self.tasks.len()
            || !self.running.is_empty()
            || self.next_event_hours(now).is_some()
        {
            return false;
        }
        let stragglers = self.tasks.len() - self.completed;
        // Any cloud type still demanded at `now` means nodes are on the way
        // (or the market is starving us for good) — nothing to extend.
        let cloud_types: std::collections::BTreeSet<&str> = self
            .options
            .node_schedule
            .iter()
            .map(|a| a.instance_type.as_str())
            .filter(|name| self.catalog.instance(name).is_some_and(|i| !i.is_local()))
            .collect();
        if cloud_types
            .iter()
            .any(|name| nodes_at(&self.options.node_schedule, name, now) > 0)
        {
            return false;
        }
        // The most recent positive cloud allocation, capped at the
        // straggler count: enough to finish, never more than the plan ever
        // fielded at once.
        let last_positive = self
            .options
            .node_schedule
            .iter()
            .filter(|a| cloud_types.contains(a.instance_type.as_str()) && a.nodes > 0)
            .max_by(|a, b| a.from_hour.partial_cmp(&b.from_hour).unwrap());
        let Some(step) = last_positive else {
            return false; // local-only deployments keep the classic stuck semantics
        };
        let extension = NodeAllocation {
            from_hour: now,
            instance_type: step.instance_type.clone(),
            nodes: step.nodes.min(stragglers),
        };
        self.options.node_schedule.push(extension);
        self.schedule_epoch += 1;
        self.schedule_points.push(now);
        self.schedule_points
            .sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.schedule_points.dedup();
        self.straggler_extensions += 1;
        true
    }

    /// The charges this job's billing account has recorded so far: WAN
    /// transfers, storage residency and every *closed* rental session
    /// (open sessions settle when they close or the job ends). Fleet
    /// drivers read this for live `status`/`fleet_bill` snapshots without
    /// consuming the execution.
    pub fn cost_so_far(&self) -> f64 {
        self.billing.total_cost()
    }

    /// The bill an [`abort`](Self::abort) (or any customer-initiated
    /// stop) at job-relative hour `now` would settle at:
    /// [`cost_so_far`](Self::cost_so_far) plus the round-up charge of
    /// every still-open rental session. Fleet drivers quote this for
    /// live status and fleet-bill snapshots, so a cancellation's final
    /// bill equals the last live quote at the same instant.
    pub fn cost_so_far_at(&self, now: f64) -> f64 {
        self.billing.total_cost() + self.billing.open_accrual(now)
    }

    /// How many times the straggler extension re-raised the last cloud
    /// allocation to finish work the schedule's ramp-down would have
    /// stranded (see `extend_for_stragglers`). Monotonically increasing;
    /// drivers diff it across a wakeup to detect an extension.
    pub fn straggler_extensions(&self) -> usize {
        self.straggler_extensions
    }

    /// A monitor's snapshot of the job at hour `now`.
    pub fn progress(&self, now: f64) -> ExecutionProgress {
        let map_done_gb = self
            .tasks
            .iter()
            .filter(|t| t.kind == TaskKind::Map && t.is_completed())
            .map(|t| t.data_gb)
            .sum();
        let mut stored_gb: BTreeMap<DataLocation, f64> = BTreeMap::new();
        for s in &self.splits {
            if s.location != DataLocation::ClientSite && s.available_at <= now + EPS {
                *stored_gb.entry(s.location).or_insert(0.0) += s.gb;
            }
        }
        ExecutionProgress {
            completed_tasks: self.completed,
            total_tasks: self.tasks.len(),
            map_done_gb,
            map_remaining: self.map_remaining,
            running_tasks: self.running.len(),
            stored_gb,
            allocated_node_hours: self.allocated_node_hours(now),
        }
    }

    /// Integral of the allocated node count over hours `[0, now]`.
    fn allocated_node_hours(&self, now: f64) -> f64 {
        let timeline = self.cluster.allocation_timeline();
        let mut hours = 0.0;
        for (i, &(t, n)) in timeline.iter().enumerate() {
            if t >= now {
                break;
            }
            let end = timeline
                .get(i + 1)
                .map(|&(t2, _)| t2.min(now))
                .unwrap_or(now);
            hours += (end - t).max(0.0) * n as f64;
        }
        hours
    }

    /// Splices an updated node schedule into the deployment from
    /// `from_hour` on: steps before `from_hour` are kept, later ones are
    /// replaced by `new_steps` (job-relative hours). Returns the wakeups
    /// for the new steps after `now` to push onto the kernel. Busy nodes
    /// finish their current task before any scale-down takes effect, as
    /// always.
    pub fn splice_node_schedule(
        &mut self,
        now: f64,
        from_hour: f64,
        mut new_steps: Vec<NodeAllocation>,
    ) -> Vec<(f64, JobEvent)> {
        self.options
            .node_schedule
            .retain(|a| a.from_hour < from_hour - EPS);
        // A compute type the updated plan no longer uses emits no steps at
        // all (plans only record positive node counts), so without an
        // explicit zero step its pre-splice count would stay in force —
        // and keep billing — until the job finished.
        let kept_types: std::collections::BTreeSet<&str> = self
            .options
            .node_schedule
            .iter()
            .map(|a| a.instance_type.as_str())
            .collect();
        for kept in kept_types {
            if !new_steps.iter().any(|s| s.instance_type == kept) {
                new_steps.push(NodeAllocation {
                    from_hour,
                    instance_type: kept.to_string(),
                    nodes: 0,
                });
            }
        }
        self.options.node_schedule.extend(new_steps);
        self.schedule_epoch += 1;
        self.options
            .node_schedule
            .sort_by(|a, b| a.from_hour.partial_cmp(&b.from_hour).unwrap());
        self.schedule_points = self
            .options
            .node_schedule
            .iter()
            .map(|a| a.from_hour)
            .collect();
        self.schedule_points
            .sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.schedule_points.dedup();
        self.schedule_points
            .iter()
            .copied()
            .filter(|&t| t > now + EPS)
            .map(|t| (t, JobEvent::ScheduleChange))
            .collect()
    }

    /// Terminates every rented cloud node at job-relative hour `now` — the
    /// node-kill path behind fleet-level spot revocations. Running tasks on
    /// the terminated nodes lose their partial work and return to the
    /// runnable set (standard MapReduce node-failure semantics), the rental
    /// sessions close **without charging the terminated partial hour**
    /// (EC2's out-of-bid rule, [`conductor_cloud::BillingAccount::stop_instance_revoked`]),
    /// and the nodes leave the cluster. Local nodes are untouched: the
    /// market cannot revoke machines the customer owns.
    ///
    /// Returns the number of nodes terminated plus the wakeups for the
    /// re-spliced schedule (see below), which the caller must push onto the
    /// kernel. The surviving schedule still demands nodes, so the next
    /// reconciliation re-requests capacity — which the market refuses while
    /// the spot price stays above the session bid, and grants again at the
    /// recovery hour (see [`SessionPricing`]).
    ///
    /// **Schedule splice:** the blackout `[now, recovery)` delivers none of
    /// the node-hours the plan counted on, so every future step of a cloud
    /// compute type slides right by the blackout length — otherwise a plan
    /// whose tail ramps down to zero would strand the returned work with
    /// nothing to run on (the fluid model believed it would already be
    /// done). A monitor re-plan may later replace this heuristic splice
    /// with a properly re-optimized schedule; between storm and tick, the
    /// shift is what keeps the job alive.
    pub fn kill_cloud_nodes(&mut self, now: f64) -> (usize, Vec<(f64, JobEvent)>) {
        if !matches!(self.phase, JobPhase::Processing) {
            return (0, Vec::new()); // nothing rented, or the download needs no nodes
        }
        let doomed: Vec<NodeId> = self
            .cluster
            .nodes()
            .iter()
            .filter(|n| !n.is_local)
            .map(|n| n.id)
            .collect();
        if doomed.is_empty() {
            return (0, Vec::new());
        }
        let mut still_running = Vec::with_capacity(self.running.len());
        for r in self.running.drain(..) {
            if doomed.contains(&r.node) {
                self.tasks[r.task_idx].state = TaskState::Runnable;
                // Back into the dispatch index: a map task re-buckets under
                // its split's location (already uploaded — it was running),
                // a reduce under the shared reduce set.
                match self.tasks[r.task_idx].kind {
                    TaskKind::Map => {
                        let split =
                            &self.splits[r.task_idx.min(self.splits.len().saturating_sub(1))];
                        self.runnable_maps
                            .entry(split.location)
                            .or_default()
                            .insert(r.task_idx);
                    }
                    TaskKind::Reduce => {
                        self.runnable_reduces.insert(r.task_idx);
                    }
                }
            } else {
                still_running.push(r);
            }
        }
        self.running = still_running;
        let removed = self.cluster.remove_specific(&doomed, now);
        for rid in &removed {
            if let Some(session) = self.sessions.remove(rid) {
                self.billing.stop_instance_revoked(session, now);
            }
        }

        let mut wakeups = Vec::new();
        if let Some(recovery) = self.pricing.recovery_hours(now) {
            let shift = recovery - now;
            if shift > EPS {
                for step in &mut self.options.node_schedule {
                    let is_local = self
                        .catalog
                        .instance(&step.instance_type)
                        .is_some_and(|i| i.is_local());
                    if !is_local && step.from_hour > now + EPS {
                        step.from_hour += shift;
                    }
                }
                self.schedule_epoch += 1;
                self.schedule_points = self
                    .options
                    .node_schedule
                    .iter()
                    .map(|a| a.from_hour)
                    .collect();
                self.schedule_points
                    .sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.schedule_points.dedup();
                wakeups = self
                    .schedule_points
                    .iter()
                    .copied()
                    .filter(|&t| t > now + EPS)
                    .map(|t| (t, JobEvent::ScheduleChange))
                    .collect();
            }
        }
        (removed.len(), wakeups)
    }

    /// The finished report. Panics if the job is not [`JobPhase::Done`];
    /// drivers only call this after the `DownloadDone` wakeup fired.
    pub fn into_report(self) -> ExecutionReport {
        self.report
            .expect("job not finished: report only exists in JobPhase::Done")
    }

    /// Abandons a run that will not finish (max-hours cap exceeded, or
    /// stuck with nothing scheduled): closes every open rental session at
    /// `now` and returns the bill accrued so far. The upload transfer and
    /// the instance-hours already consumed were real spend, so fleet
    /// accounting must not lose them just because the job failed. A
    /// configured deadline counts as missed.
    pub fn abort(mut self, now: f64) -> ExecutionReport {
        for (_, session) in std::mem::take(&mut self.sessions) {
            self.billing.stop_instance(session, now);
        }
        ExecutionReport {
            name: self.options.name.clone(),
            completion_hours: now,
            phases: self.phases,
            total_cost: self.billing.total_cost(),
            cost_breakdown: self.billing.breakdown().clone(),
            met_deadline: self.options.deadline_hours.map(|_| false),
            task_timeline: self.task_timeline,
            allocation_timeline: self.cluster.allocation_timeline().to_vec(),
            total_tasks: self.tasks.len(),
            wan_in_gb: self.billing.uploaded_gb,
            wan_out_gb: self.billing.downloaded_gb,
        }
    }

    // ---- event handlers -------------------------------------------------

    /// Retires every running task whose finish time is due at `now`.
    fn retire_finished(&mut self, now: f64) {
        let mut still_running = Vec::with_capacity(self.running.len());
        for r in self.running.drain(..) {
            if r.finish_at <= now + EPS {
                let idx = r.task_idx;
                self.tasks[idx].state = TaskState::Completed { at: r.finish_at };
                self.completed += 1;
                if self.tasks[idx].kind == TaskKind::Map {
                    self.map_remaining -= 1;
                    if self.map_remaining == 0 {
                        self.phases.map_done_at = r.finish_at;
                    }
                } else if self.completed == self.tasks.len() {
                    self.phases.reduce_done_at = r.finish_at;
                }
                self.wan_in_extra += r.wan_gb;
                self.total_s3_gets += r.s3_gets;
                if r.on_cloud_node && self.tasks[idx].kind == TaskKind::Map {
                    self.cloud_processed_gb += self.tasks[idx].data_gb;
                }
                self.task_timeline.push((r.finish_at, self.completed));
            } else {
                still_running.push(r);
            }
        }
        self.running = still_running;
    }

    /// `true` while the schedule demands more cloud nodes of some type than
    /// the cluster currently holds — the state in which an out-bid spot
    /// market (rather than the schedule) is what limits the job.
    fn wants_more_cloud_nodes(&self, now: f64) -> bool {
        let types: std::collections::BTreeSet<&str> = self
            .options
            .node_schedule
            .iter()
            .map(|a| a.instance_type.as_str())
            .collect();
        types.into_iter().any(|itype_name| {
            let Some(itype) = self.catalog.instance(itype_name) else {
                return false;
            };
            if itype.is_local() {
                return false;
            }
            let desired = nodes_at(&self.options.node_schedule, itype_name, now);
            let desired = match itype.max_instances {
                Some(cap) => desired.min(cap),
                None => desired,
            };
            desired > self.cluster.count_of(itype_name)
        })
    }

    /// Adds/removes nodes so the cluster matches the schedule at time
    /// `now`, opening and closing billing sessions accordingly. Busy nodes
    /// are never removed; the reconciliation is retried at the next wakeup.
    /// Spot-priced acquisitions the market currently refuses (price above
    /// bid) are skipped, and a retry wakeup for the recovery hour is pushed
    /// onto `out` instead.
    fn reconcile_cluster(&mut self, now: f64, out: &mut Vec<(f64, JobEvent)>) {
        let types: Vec<String> = self
            .options
            .node_schedule
            .iter()
            .map(|a| a.instance_type.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for itype_name in types {
            let Some(itype) = self.catalog.instance(&itype_name) else {
                continue;
            };
            let desired = nodes_at(&self.options.node_schedule, &itype_name, now);
            let desired = match itype.max_instances {
                Some(cap) => desired.min(cap),
                None => desired,
            };
            let current = self.cluster.count_of(&itype_name);
            if desired > current {
                if self.pricing.acquisition_blocked(itype, now) {
                    if let Some(recovery) = self.pricing.recovery_hours(now) {
                        if recovery > now + EPS {
                            out.push((recovery, JobEvent::ScheduleChange));
                        }
                    }
                    continue;
                }
                let price = self.pricing.price_for(itype, now);
                let ids = self.cluster.add_nodes(itype, desired - current, now);
                for id in ids {
                    self.sessions
                        .insert(id, self.billing.start_instance_at_price(itype, now, price));
                }
            } else if desired < current {
                // Remove idle nodes only (busy nodes finish their task
                // first; the reconciliation is retried at the next wakeup),
                // newest first so long-lived nodes keep their data.
                let busy: Vec<NodeId> = self.running.iter().map(|r| r.node).collect();
                let idle_ids: Vec<NodeId> = self
                    .cluster
                    .nodes()
                    .iter()
                    .rev()
                    .filter(|n| n.instance_type == itype_name && !busy.contains(&n.id))
                    .map(|n| n.id)
                    .take(current - desired)
                    .collect();
                let removed = self.cluster.remove_specific(&idle_ids, now);
                for rid in removed {
                    if let Some(session) = self.sessions.remove(&rid) {
                        self.billing.stop_instance(session, now);
                    }
                }
            }
        }
    }

    /// Moves upload-pending map tasks whose split has finished uploading
    /// by `now` into the per-location dispatch index.
    fn promote_available(&mut self, now: f64) {
        while let Some(&(available_at, idx, location)) = self.upload_pending.get(self.upload_cursor)
        {
            if available_at > now + EPS {
                break;
            }
            self.runnable_maps.entry(location).or_default().insert(idx);
            self.upload_cursor += 1;
        }
    }

    /// Dispatches runnable tasks onto idle nodes, pushing a `TaskFinish`
    /// wakeup for each dispatch. Candidates come from the per-location
    /// dispatch index, not a scan over every task: for each idle node the
    /// contenders are the lowest-index pending task of every location with
    /// available data (plus the lowest pending reduce once the map barrier
    /// opens), ranked exactly as the old full scan ranked them — highest
    /// scheduler preference first, lowest task index on ties.
    fn dispatch(&mut self, now: f64, out: &mut Vec<(f64, JobEvent)>) {
        self.promote_available(now);
        let upload_gate_open =
            !self.options.upload_before_processing || now >= self.upload_done_at - EPS;
        let busy: Vec<NodeId> = self.running.iter().map(|r| r.node).collect();
        let idle_nodes: Vec<NodeId> = self
            .cluster
            .nodes()
            .iter()
            .map(|n| n.id)
            .filter(|id| !busy.contains(id))
            .collect();

        for node_id in idle_nodes {
            let node = self
                .cluster
                .node(node_id)
                .expect("idle node still in cluster")
                .clone();
            // Find the best dispatchable task for this node: max preference,
            // ties to the lowest task index (the order the old linear scan
            // produced, since preference depends only on location + node).
            let mut best: Option<(usize, DataLocation, i32)> = None;
            let mut consider = |idx: usize, location: DataLocation, pref: i32| match best {
                Some((b_idx, _, b_pref)) if pref < b_pref || (pref == b_pref && b_idx < idx) => {}
                _ => best = Some((idx, location, pref)),
            };
            if upload_gate_open {
                for (&location, pending) in &self.runnable_maps {
                    let Some(&idx) = pending.first() else {
                        continue;
                    };
                    if !self.scheduler.may_run(&self.tasks[idx], location, &node) {
                        continue;
                    }
                    consider(idx, location, self.scheduler.preference(location, &node));
                }
            }
            if self.map_remaining == 0 {
                // Barrier open: reduces read shuffled data local to the node.
                if let Some(&idx) = self.runnable_reduces.first() {
                    let location = if node.is_local {
                        DataLocation::LocalDisk
                    } else {
                        DataLocation::InstanceDisk
                    };
                    if self.scheduler.may_run(&self.tasks[idx], location, &node) {
                        consider(idx, location, self.scheduler.preference(location, &node));
                    }
                }
            }
            if let Some((idx, location, _)) = best {
                let rate = self.effective_rate(&node, location, self.cluster.len());
                if rate <= 0.0 {
                    continue;
                }
                let data_gb = self.tasks[idx].data_gb;
                let duration = data_gb / rate;
                // A remote read crosses the WAN only when a *cloud* node
                // pulls data from the customer site.
                let wan_gb = if location == DataLocation::ClientSite && !node.is_local {
                    data_gb
                } else {
                    0.0
                };
                let s3_gets = if location == DataLocation::S3 {
                    (data_gb * 1024.0 / self.options.object_size_mb).ceil() as u64
                } else {
                    0
                };
                self.tasks[idx].state = TaskState::Running {
                    node: node_id,
                    finish_at: now + duration,
                };
                match self.tasks[idx].kind {
                    TaskKind::Map => {
                        if let Some(pending) = self.runnable_maps.get_mut(&location) {
                            pending.remove(&idx);
                        }
                    }
                    TaskKind::Reduce => {
                        self.runnable_reduces.remove(&idx);
                    }
                }
                self.running.push(Running {
                    task_idx: idx,
                    node: node_id,
                    finish_at: now + duration,
                    wan_gb,
                    s3_gets,
                    on_cloud_node: !node.is_local,
                });
                out.push((now + duration, JobEvent::TaskFinish));
            }
        }
    }

    /// Post-processing once every task retired: result download, storage
    /// billing, session teardown. Returns the completion hour and stores
    /// the finished [`ExecutionReport`].
    fn finalize(&mut self, processing_done: f64) -> f64 {
        // Only the share of the output produced in the cloud has to cross
        // the WAN back to the customer.
        let cloud_fraction = if self.spec.input_gb > 0.0 {
            (self.cloud_processed_gb / self.spec.input_gb).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let download_gb = self.spec.output_gb() * cloud_fraction;
        self.phases.download_hours = if self.options.uplink_gbph > 0.0 {
            download_gb / self.options.uplink_gbph
        } else {
            0.0
        };
        let completion = processing_done + self.phases.download_hours;

        // WAN charges for remote reads and the result download.
        if self.wan_in_extra > 0.0 {
            self.billing
                .record_transfer(self.wan_in_extra, TransferDirection::In);
        }
        self.billing
            .record_transfer(download_gb, TransferDirection::Out);

        // S3 residency: data sits on S3 from (roughly) the middle of its
        // upload window until the job completes, plus the PUT/GET requests.
        if self.s3_gb > 0.0 {
            if let Some(s3) = self.catalog.storage("S3") {
                let residency = (completion - self.upload_done_at / 2.0).max(0.0);
                let puts = (self.s3_gb * 1024.0 / self.options.object_size_mb).ceil() as u64;
                self.billing
                    .record_storage(s3, self.s3_gb, residency, puts, self.total_s3_gets);
            }
        }
        // Instance-disk and local-disk storage is free but recorded so the
        // cost breakdown carries the category.
        let disk_gb: f64 = self
            .splits
            .iter()
            .filter(|s| {
                matches!(
                    s.location,
                    DataLocation::InstanceDisk | DataLocation::LocalDisk
                )
            })
            .map(|s| s.gb)
            .sum();
        if disk_gb > 0.0 {
            if let Some(disk) = self.catalog.storage("EC2-disk") {
                self.billing.record_storage(disk, disk_gb, completion, 0, 0);
            }
        }

        // Stop renting everything at the completion time.
        for (_, session) in std::mem::take(&mut self.sessions) {
            self.billing.stop_instance(session, completion);
        }

        let met_deadline = self.options.deadline_hours.map(|d| completion <= d + EPS);
        self.report = Some(ExecutionReport {
            name: self.options.name.clone(),
            completion_hours: completion,
            phases: self.phases,
            total_cost: self.billing.total_cost(),
            cost_breakdown: self.billing.breakdown().clone(),
            met_deadline,
            task_timeline: std::mem::take(&mut self.task_timeline),
            allocation_timeline: self.cluster.allocation_timeline().to_vec(),
            total_tasks: self.tasks.len(),
            wan_in_gb: self.billing.uploaded_gb,
            wan_out_gb: self.billing.downloaded_gb,
        });
        completion
    }

    /// Effective processing rate of `node` for input at `location`, in
    /// GB/h. Node throughputs are catalog figures calibrated on the
    /// reference workload; they scale by `spec.throughput_scale()` for the
    /// workload at hand — the same scaling the planner's capacity model
    /// applies, so plans and simulated executions agree for non-reference
    /// workloads.
    fn effective_rate(
        &self,
        node: &crate::cluster::SimNode,
        location: DataLocation,
        cluster_size: usize,
    ) -> f64 {
        let node_gbph = node.throughput_gbph * self.spec.throughput_scale();
        match location {
            DataLocation::InstanceDisk | DataLocation::LocalDisk => node_gbph,
            DataLocation::S3 => node_gbph * self.options.s3_throughput_factor,
            DataLocation::ClientSite => {
                // Remote readers share the customer uplink.
                let share = self.options.uplink_gbph / cluster_size.max(1) as f64;
                node_gbph.min(share)
            }
        }
    }
}

/// The complete serializable state of one [`JobExecution`], for
/// checkpoint/resume. Every runtime field travels — including the billing
/// ledger, the dispatch index and the task timeline — so a restored
/// execution is field-for-field identical to the live one and produces the
/// same wakeup handling, costs and final report bit for bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionSnapshot {
    catalog: Catalog,
    spec: JobSpec,
    options: DeploymentOptions,
    scheduler: SchedulerSnapshot,
    pricing: SessionPricing,
    billing: BillingAccount,
    cluster: Cluster,
    sessions: BTreeMap<NodeId, u64>,
    tasks: Vec<Task>,
    splits: Vec<Split>,
    running: Vec<Running>,
    schedule_points: Vec<f64>,
    runnable_maps: BTreeMap<DataLocation, BTreeSet<usize>>,
    runnable_reduces: BTreeSet<usize>,
    upload_pending: Vec<(f64, usize, DataLocation)>,
    upload_cursor: usize,
    task_timeline: Vec<(f64, usize)>,
    completed: usize,
    map_remaining: usize,
    wan_in_extra: f64,
    total_s3_gets: u64,
    cloud_processed_gb: f64,
    phases: PhaseBreakdown,
    upload_done_at: f64,
    s3_gb: f64,
    straggler_extensions: usize,
    schedule_epoch: u64,
    phase: JobPhase,
    report: Option<ExecutionReport>,
}

impl JobExecution<'_> {
    /// Captures the full runtime state (see [`ExecutionSnapshot`]).
    pub fn snapshot(&self) -> ExecutionSnapshot {
        ExecutionSnapshot {
            catalog: self.catalog.clone(),
            spec: self.spec.clone(),
            options: self.options.clone(),
            scheduler: self.scheduler.snapshot(),
            pricing: self.pricing.clone(),
            billing: self.billing.clone(),
            cluster: self.cluster.clone(),
            sessions: self.sessions.clone(),
            tasks: self.tasks.clone(),
            splits: self.splits.clone(),
            running: self.running.clone(),
            schedule_points: self.schedule_points.clone(),
            runnable_maps: self.runnable_maps.clone(),
            runnable_reduces: self.runnable_reduces.clone(),
            upload_pending: self.upload_pending.clone(),
            upload_cursor: self.upload_cursor,
            task_timeline: self.task_timeline.clone(),
            completed: self.completed,
            map_remaining: self.map_remaining,
            wan_in_extra: self.wan_in_extra,
            total_s3_gets: self.total_s3_gets,
            cloud_processed_gb: self.cloud_processed_gb,
            phases: self.phases,
            upload_done_at: self.upload_done_at,
            s3_gb: self.s3_gb,
            straggler_extensions: self.straggler_extensions,
            schedule_epoch: self.schedule_epoch,
            phase: self.phase,
            report: self.report.clone(),
        }
    }
}

impl ExecutionSnapshot {
    /// Rebuilds the execution exactly as captured; the scheduler is
    /// reconstructed from its snapshot, so the result owns all its state
    /// (hence the `'static` lifetime).
    pub fn restore(&self) -> JobExecution<'static> {
        JobExecution {
            catalog: self.catalog.clone(),
            spec: self.spec.clone(),
            options: self.options.clone(),
            scheduler: self.scheduler.rebuild(),
            pricing: self.pricing.clone(),
            billing: self.billing.clone(),
            cluster: self.cluster.clone(),
            sessions: self.sessions.clone(),
            tasks: self.tasks.clone(),
            splits: self.splits.clone(),
            running: self.running.clone(),
            schedule_points: self.schedule_points.clone(),
            runnable_maps: self.runnable_maps.clone(),
            runnable_reduces: self.runnable_reduces.clone(),
            upload_pending: self.upload_pending.clone(),
            upload_cursor: self.upload_cursor,
            task_timeline: self.task_timeline.clone(),
            completed: self.completed,
            map_remaining: self.map_remaining,
            wan_in_extra: self.wan_in_extra,
            total_s3_gets: self.total_s3_gets,
            cloud_processed_gb: self.cloud_processed_gb,
            phases: self.phases,
            upload_done_at: self.upload_done_at,
            s3_gb: self.s3_gb,
            straggler_extensions: self.straggler_extensions,
            schedule_epoch: self.schedule_epoch,
            phase: self.phase,
            report: self.report.clone(),
        }
    }
}

fn crosses_wan(loc: DataLocation) -> bool {
    matches!(loc, DataLocation::S3 | DataLocation::InstanceDisk)
}

fn validate(catalog: &Catalog, options: &DeploymentOptions) -> Result<(), EngineError> {
    if options.uplink_gbph <= 0.0 {
        return Err(EngineError::InvalidOptions(
            "uplink bandwidth must be positive".into(),
        ));
    }
    let frac: f64 = options.upload_plan.iter().map(|(_, f)| *f).sum();
    if !(0.0..=1.0 + EPS).contains(&frac) {
        return Err(EngineError::InvalidOptions(format!(
            "upload fractions must sum to at most 1 (got {frac})"
        )));
    }
    if options
        .upload_plan
        .iter()
        .any(|(loc, _)| *loc == DataLocation::ClientSite)
    {
        return Err(EngineError::InvalidOptions(
            "the client site is the upload source, not a destination".into(),
        ));
    }
    for alloc in &options.node_schedule {
        if catalog.instance(&alloc.instance_type).is_none() {
            return Err(EngineError::InvalidOptions(format!(
                "unknown instance type `{}` in node schedule",
                alloc.instance_type
            )));
        }
    }
    Ok(())
}

/// Assigns each map split an upload destination and availability time.
///
/// Splits are uploaded back to back over the uplink in the order of the
/// upload plan (e.g. "first roughly half to S3, then the rest to EC2
/// disks", as in the Figure 8 scenario); splits not covered by the plan
/// stay at the client site and are available immediately (for remote
/// reads).
fn plan_splits(spec: &JobSpec, options: &DeploymentOptions) -> Vec<Split> {
    let n = spec.map_tasks();
    let split_gb = if n > 0 { spec.input_gb / n as f64 } else { 0.0 };
    let mut splits = Vec::with_capacity(n);
    let mut assigned = 0usize;
    let mut elapsed = 0.0f64;
    for (location, fraction) in &options.upload_plan {
        let count = ((fraction * n as f64).round() as usize).min(n - assigned);
        for _ in 0..count {
            let available_at = if *location == DataLocation::LocalDisk {
                // Local-cluster disks are fed over the LAN, not the uplink.
                0.0
            } else {
                elapsed += split_gb / options.uplink_gbph;
                elapsed
            };
            splits.push(Split {
                location: *location,
                available_at,
                gb: split_gb,
            });
        }
        assigned += count;
    }
    for _ in assigned..n {
        splits.push(Split {
            location: DataLocation::ClientSite,
            available_at: 0.0,
            gb: split_gb,
        });
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::LocalityScheduler;
    use crate::workload::Workload;

    fn execution() -> JobExecution<'static> {
        let catalog = Catalog::aws_with_local_cluster(5);
        let uplink = conductor_cloud::catalog::mbps_to_gb_per_hour(16.0);
        let options = DeploymentOptions::new("splice-test", uplink)
            .with_nodes("m1.large", 4, 0.0)
            .with_nodes("local", 5, 0.0);
        JobExecution::new(
            &catalog,
            &Workload::KMeans32Gb.spec(),
            options,
            Box::new(LocalityScheduler),
            SessionPricing::OnDemand,
        )
        .unwrap()
    }

    #[test]
    fn splice_releases_compute_types_the_new_schedule_dropped() {
        let mut exec = execution();
        exec.on_wakeup(0.0); // allocate the initial cluster
        assert_eq!(exec.cluster.count_of("m1.large"), 4);
        // Re-plan keeps only the free local nodes from hour 1 on.
        let wakeups = exec.splice_node_schedule(
            1.0,
            1.0,
            vec![NodeAllocation {
                from_hour: 1.0,
                instance_type: "local".into(),
                nodes: 5,
            }],
        );
        // A synthetic zero step for the dropped type is in the schedule...
        assert!(
            exec.node_schedule()
                .iter()
                .any(|s| s.instance_type == "m1.large" && s.from_hour == 1.0 && s.nodes == 0),
            "{:?}",
            exec.node_schedule()
        );
        // ...and once the wakeups past the splice fire, the rented nodes
        // wind down as their tasks retire (billing sessions close).
        let mut pending: Vec<(f64, JobEvent)> = wakeups;
        pending.extend(exec.on_wakeup(1.0));
        let mut horizon = 1.0;
        while exec.cluster.count_of("m1.large") > 0 && horizon < 50.0 {
            horizon = exec
                .next_event_hours(horizon)
                .expect("job still has events");
            pending.extend(exec.on_wakeup(horizon));
        }
        assert_eq!(
            exec.cluster.count_of("m1.large"),
            0,
            "dropped type still allocated at hour {horizon}"
        );
        assert_eq!(exec.cluster.count_of("local"), 5);
    }

    fn spot_execution(prices: Vec<f64>, bid: f64) -> JobExecution<'static> {
        let catalog = Catalog::aws_july_2011();
        let uplink = conductor_cloud::catalog::mbps_to_gb_per_hour(16.0);
        // Remote reads from the client site: every map task is dispatchable
        // at hour zero and the event horizon has no upload arrivals, so
        // these tests observe the market effects in isolation.
        let options = DeploymentOptions {
            upload_plan: vec![],
            ..DeploymentOptions::new("spot-test", uplink).with_nodes("m1.large", 4, 0.0)
        };
        let market = SpotMarket::new(
            conductor_cloud::SpotTrace::from_prices(conductor_cloud::TraceKind::AwsLike, prices),
            0.34,
        );
        JobExecution::new(
            &catalog,
            &Workload::KMeans32Gb.spec(),
            options,
            Box::new(LocalityScheduler),
            SessionPricing::Spot {
                market,
                start_offset_hours: 0.0,
                bid,
            },
        )
        .unwrap()
    }

    #[test]
    fn kill_returns_running_tasks_and_skips_the_partial_hour_charge() {
        let mut exec = spot_execution(vec![0.2; 10], 0.34);
        exec.on_wakeup(0.0);
        assert_eq!(exec.cluster.count_of("m1.large"), 4);
        let running_before = exec.running.len();
        assert!(running_before > 0);
        // Revoked half an hour in: no completed hour, so nothing charged.
        let (killed, _) = exec.kill_cloud_nodes(0.5);
        assert_eq!(killed, 4);
        assert!(exec.cluster.is_empty());
        assert!(exec.running.is_empty());
        assert_eq!(
            exec.billing
                .breakdown()
                .get(conductor_cloud::CostCategory::Computation),
            0.0
        );
        // The interrupted work went back to the dispatch index as runnable.
        let runnable = exec
            .tasks
            .iter()
            .filter(|t| matches!(t.state, TaskState::Runnable))
            .count();
        assert_eq!(runnable, running_before);
        let indexed: usize = exec.runnable_maps.values().map(|s| s.len()).sum();
        assert_eq!(
            indexed,
            exec.tasks
                .iter()
                .filter(|t| {
                    t.kind == TaskKind::Map
                        && matches!(t.state, TaskState::WaitingForData | TaskState::Runnable)
                })
                .count(),
            "index lost the returned work"
        );
    }

    #[test]
    fn out_bid_market_blocks_acquisition_until_recovery() {
        // Price above the bid for hours 0-1, back down at hour 2.
        let mut exec = spot_execution(vec![0.5, 0.5, 0.2, 0.2, 0.2], 0.34);
        let wakeups = exec.on_wakeup(0.0);
        assert!(exec.cluster.is_empty(), "acquired while out-bid");
        // The reconciliation scheduled a retry at the recovery hour...
        assert!(
            wakeups
                .iter()
                .any(|&(t, e)| e == JobEvent::ScheduleChange && (t - 2.0).abs() < 1e-9),
            "{wakeups:?}"
        );
        // ...and the job is not considered stuck while it waits.
        assert_eq!(exec.next_event_hours(0.0), Some(2.0));
        // At recovery the market grants the request.
        exec.on_wakeup(2.0);
        assert_eq!(exec.cluster.count_of("m1.large"), 4);
    }

    #[test]
    fn permanently_out_bid_market_is_reported_stuck() {
        // The trace ends expensive: past-the-end hours clamp to 0.5, so the
        // price never comes back to the bid and the job truly starves.
        let mut exec = spot_execution(vec![0.5], 0.34);
        exec.on_wakeup(0.0);
        assert!(exec.cluster.is_empty());
        assert_eq!(exec.next_event_hours(0.0), None);
    }

    #[test]
    fn abort_closes_sessions_and_keeps_the_accrued_bill() {
        let mut exec = execution();
        exec.on_wakeup(0.0);
        let report = exec.abort(2.5);
        // The 32 GB upload was billed at construction; the 4 cloud nodes
        // ran 2.5 h -> 3 billed hours each. Local nodes are free.
        assert!((report.wan_in_gb - 32.0).abs() < 1e-9);
        let compute = report
            .cost_breakdown
            .get(conductor_cloud::CostCategory::Computation);
        assert!(
            (compute - 4.0 * 3.0 * 0.34).abs() < 1e-9,
            "compute {compute}"
        );
        assert_eq!(report.met_deadline, None); // no deadline configured
        assert!((report.completion_hours - 2.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_restore_resumes_bit_for_bit() {
        // Price spike at hour 1 exercises the spot pricing state; drive the
        // live execution partway, snapshot, then race both to completion.
        let prices = vec![0.2, 0.5, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2];
        let mut live = spot_execution(prices, 0.34);
        live.on_wakeup(0.0);
        let mut horizon = 0.0;
        for _ in 0..3 {
            if let Some(t) = live.next_event_hours(horizon) {
                live.on_wakeup(t);
                horizon = t;
            }
        }
        let snap = snapshot_roundtrip(&live.snapshot());
        let mut resumed = snap.restore();

        let drive = |exec: &mut JobExecution<'_>, mut horizon: f64| {
            let mut guard = 0;
            while !exec.is_done() && guard < 10_000 {
                match exec.next_event_hours(horizon) {
                    Some(t) => {
                        exec.on_wakeup(t);
                        horizon = t;
                    }
                    None => break,
                }
                guard += 1;
            }
        };
        drive(&mut live, horizon);
        drive(&mut resumed, horizon);
        assert!(live.is_done());
        assert!(resumed.is_done());
        // The whole end state — report, billing ledger, timeline — must be
        // identical, not merely close.
        assert_eq!(
            live.snapshot().serialize(),
            resumed.snapshot().serialize(),
            "resumed execution diverged from the uninterrupted run"
        );
    }

    /// Serializes and deserializes the snapshot so the test covers the full
    /// persistence path, not just the in-memory clone.
    fn snapshot_roundtrip(snap: &ExecutionSnapshot) -> ExecutionSnapshot {
        ExecutionSnapshot::deserialize(&snap.serialize()).expect("snapshot round-trip")
    }
}
