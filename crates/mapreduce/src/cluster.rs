//! The simulated compute cluster: nodes, slots and time-varying allocations.

use conductor_cloud::InstanceType;
use serde::{Deserialize, Serialize};

/// Identifier of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// One simulated worker node (an EC2 instance or a local-cluster machine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNode {
    /// Node identifier.
    pub id: NodeId,
    /// Instance type name (`"m1.large"`, `"local"`, ...).
    pub instance_type: String,
    /// Application throughput of this node in GB/h.
    pub throughput_gbph: f64,
    /// Capacity of the node's virtual disk in GB.
    pub disk_gb: f64,
    /// Simulation hour at which the node joined the cluster.
    pub joined_at: f64,
    /// `true` when the node belongs to the customer's own cluster.
    pub is_local: bool,
}

/// A step in a node-allocation schedule: starting at `from_hour`, keep
/// `nodes` instances of `instance_type` allocated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeAllocation {
    /// Hour (inclusive) from which this allocation level applies.
    pub from_hour: f64,
    /// Instance type to allocate.
    pub instance_type: String,
    /// Number of instances to keep allocated from `from_hour` on.
    pub nodes: usize,
}

/// The set of worker nodes currently part of the MapReduce cluster.
///
/// Conductor changes the cluster size over time by following the plan's
/// per-interval node counts; the [`Cluster`] records joins and removals so
/// the engine can bill rentals correctly and the Figure 12 timeline can be
/// reconstructed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<SimNode>,
    next_id: usize,
    /// `(hour, node_count)` samples recorded at every membership change.
    allocation_timeline: Vec<(f64, usize)>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` nodes of the given instance type at simulation hour `now`,
    /// using the instance's measured throughput. Returns the new node ids.
    pub fn add_nodes(&mut self, itype: &InstanceType, count: usize, now: f64) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = NodeId(self.next_id);
            self.next_id += 1;
            self.nodes.push(SimNode {
                id,
                instance_type: itype.name.clone(),
                throughput_gbph: itype.measured_throughput_gbph,
                disk_gb: itype.disk_gb,
                joined_at: now,
                is_local: itype.is_local(),
            });
            ids.push(id);
        }
        self.record(now);
        ids
    }

    /// Removes up to `count` nodes of the given instance type at hour `now`,
    /// newest first (so long-running nodes keep their data). Returns the ids
    /// actually removed.
    pub fn remove_nodes(&mut self, instance_type: &str, count: usize, now: f64) -> Vec<NodeId> {
        let mut removed = Vec::new();
        // Iterate from the end so the most recently added nodes leave first.
        let mut i = self.nodes.len();
        while i > 0 && removed.len() < count {
            i -= 1;
            if self.nodes[i].instance_type == instance_type {
                removed.push(self.nodes.remove(i).id);
            }
        }
        if !removed.is_empty() {
            self.record(now);
        }
        removed
    }

    /// Removes exactly the listed nodes (ids not present are ignored) at hour
    /// `now` and returns the ids actually removed.
    pub fn remove_specific(&mut self, ids: &[NodeId], now: f64) -> Vec<NodeId> {
        let before = self.nodes.len();
        let mut removed = Vec::new();
        self.nodes.retain(|n| {
            if ids.contains(&n.id) {
                removed.push(n.id);
                false
            } else {
                true
            }
        });
        if self.nodes.len() != before {
            self.record(now);
        }
        removed
    }

    fn record(&mut self, now: f64) {
        self.allocation_timeline.push((now, self.nodes.len()));
    }

    /// All current member nodes.
    pub fn nodes(&self) -> &[SimNode] {
        &self.nodes
    }

    /// Current number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes are allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes of a given instance type.
    pub fn count_of(&self, instance_type: &str) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.instance_type == instance_type)
            .count()
    }

    /// Aggregate processing throughput of the current membership in GB/h.
    pub fn total_throughput_gbph(&self) -> f64 {
        self.nodes.iter().map(|n| n.throughput_gbph).sum()
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&SimNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// The `(hour, node_count)` membership-change samples recorded so far —
    /// the "allocated EC2 instances" series of Figure 12(a).
    pub fn allocation_timeline(&self) -> &[(f64, usize)] {
        &self.allocation_timeline
    }
}

/// Expands a step schedule into the node count that should be active at a
/// given hour (the last step whose `from_hour` is ≤ `hour` wins; 0 before the
/// first step).
pub fn nodes_at(schedule: &[NodeAllocation], instance_type: &str, hour: f64) -> usize {
    schedule
        .iter()
        .filter(|a| a.instance_type == instance_type && a.from_hour <= hour + 1e-9)
        .max_by(|a, b| a.from_hour.partial_cmp(&b.from_hour).unwrap())
        .map(|a| a.nodes)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conductor_cloud::Catalog;

    fn m1_large() -> InstanceType {
        Catalog::aws_july_2011()
            .instance("m1.large")
            .unwrap()
            .clone()
    }

    #[test]
    fn adding_and_removing_nodes_updates_counts() {
        let mut c = Cluster::new();
        let ids = c.add_nodes(&m1_large(), 3, 0.0);
        assert_eq!(ids.len(), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.count_of("m1.large"), 3);
        let removed = c.remove_nodes("m1.large", 2, 1.0);
        assert_eq!(removed.len(), 2);
        assert_eq!(c.len(), 1);
        // Removing an absent type is a no-op.
        assert!(c.remove_nodes("c1.xlarge", 1, 1.0).is_empty());
    }

    #[test]
    fn node_ids_are_unique_across_membership_changes() {
        let mut c = Cluster::new();
        let first = c.add_nodes(&m1_large(), 2, 0.0);
        c.remove_nodes("m1.large", 2, 1.0);
        let second = c.add_nodes(&m1_large(), 2, 2.0);
        for id in &second {
            assert!(!first.contains(id));
        }
    }

    #[test]
    fn throughput_aggregates_over_members() {
        let mut c = Cluster::new();
        c.add_nodes(&m1_large(), 16, 0.0);
        assert!((c.total_throughput_gbph() - 16.0 * 0.44).abs() < 1e-9);
    }

    #[test]
    fn allocation_timeline_records_changes() {
        let mut c = Cluster::new();
        c.add_nodes(&m1_large(), 3, 0.0);
        c.add_nodes(&m1_large(), 2, 1.0);
        c.remove_nodes("m1.large", 4, 2.0);
        let tl = c.allocation_timeline();
        assert_eq!(tl, &[(0.0, 3), (1.0, 5), (2.0, 1)]);
    }

    #[test]
    fn newest_nodes_are_removed_first() {
        let mut c = Cluster::new();
        let old = c.add_nodes(&m1_large(), 1, 0.0);
        let young = c.add_nodes(&m1_large(), 1, 1.0);
        let removed = c.remove_nodes("m1.large", 1, 2.0);
        assert_eq!(removed, young);
        assert!(c.node(old[0]).is_some());
    }

    #[test]
    fn schedule_lookup_uses_latest_step() {
        let schedule = vec![
            NodeAllocation {
                from_hour: 0.0,
                instance_type: "m1.large".into(),
                nodes: 3,
            },
            NodeAllocation {
                from_hour: 1.0,
                instance_type: "m1.large".into(),
                nodes: 16,
            },
            NodeAllocation {
                from_hour: 2.0,
                instance_type: "m1.large".into(),
                nodes: 18,
            },
        ];
        assert_eq!(nodes_at(&schedule, "m1.large", 0.5), 3);
        assert_eq!(nodes_at(&schedule, "m1.large", 1.0), 16);
        assert_eq!(nodes_at(&schedule, "m1.large", 5.0), 18);
        assert_eq!(nodes_at(&schedule, "local", 5.0), 0);
    }
}
