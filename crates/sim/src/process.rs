//! Process handles: stable identities for the state machines sharing one
//! simulation clock.

use serde::{Deserialize, Serialize};

/// Handle of one process (state machine) registered with a simulation.
///
/// The kernel never interprets handles; they exist so event payloads can be
/// addressed ("task finish for job 3", "monitor tick for the fleet") and so
/// drivers can route a popped event to the right handler. Handles are plain
/// indices issued in registration order, which keeps multi-process runs
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "process-{}", self.0)
    }
}

/// Issues unique [`ProcessId`]s in registration order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcessRegistry {
    next: usize,
}

impl ProcessRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new process and returns its handle.
    pub fn register(&mut self) -> ProcessId {
        let id = ProcessId(self.next);
        self.next += 1;
        id
    }

    /// Number of processes registered so far.
    pub fn len(&self) -> usize {
        self.next
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_dense_and_unique() {
        let mut reg = ProcessRegistry::new();
        let a = reg.register();
        let b = reg.register();
        let c = reg.register();
        assert_eq!((a, b, c), (ProcessId(0), ProcessId(1), ProcessId(2)));
        assert_eq!(reg.len(), 3);
        assert_eq!(a.to_string(), "process-0");
    }
}
