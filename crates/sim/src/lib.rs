//! # conductor-sim
//!
//! A small discrete-event simulation kernel shared by the MapReduce
//! execution engine and the fleet-level `ConductorService`: an event heap
//! with fully deterministic ordering, a monotonic simulation clock, and
//! process handles for addressing events to the state machines that share
//! one clock.
//!
//! The kernel is deliberately minimal — it owns *when* things happen, never
//! *what* happens. Payloads are opaque to the heap; processes (the
//! engine's upload/scheduling/download handlers, the service's per-job
//! executions and monitors) interpret them. Determinism is a hard
//! requirement: given the same schedule of events, every run pops them in
//! the identical order, because ties are broken first by an explicit event
//! class and then by insertion sequence (FIFO).
//!
//! # Event-class layering
//!
//! Classes are small `u8` priorities the *callers* assign; the kernel only
//! promises that among simultaneous events lower classes pop first. Both
//! drivers in this workspace follow the same layering discipline so that
//! an instant always settles in cause-before-observer order:
//!
//! - The job engine orders data arrivals (0) before allocation steps (1)
//!   before task finishes (2) before completion (3).
//! - The fleet service orders arrivals (0) before job wakeups (1) before
//!   **spot revocations** (2) before monitor ticks (9). A task that
//!   finishes exactly at an out-bid hour retires before the revocation
//!   strikes (its hour completed); the revocation kills only the
//!   survivors; and the monitor then observes the *post-storm* world, so
//!   a re-plan in the same instant already sees the damage.
//!
//! Leaving gaps in the numbering (the monitor sits at 9) lets callers
//! splice new event kinds between existing layers — exactly how
//! revocations landed at 2 — without renumbering, which would silently
//! reorder previously recorded simulations.

mod clock;
mod heap;
mod process;

pub use clock::SimClock;
pub use heap::{EventHeap, ScheduledEvent};
pub use process::{ProcessId, ProcessRegistry};

/// Default time tolerance (in simulated hours) within which two events are
/// considered simultaneous. Matches the `1e-9` slack the execution engine
/// has always used for time comparisons, so event-batch boundaries agree
/// with the engine's availability/retirement checks.
pub const TIME_EPSILON: f64 = 1e-9;

/// A discrete-event simulator: an [`EventHeap`] plus a [`SimClock`].
///
/// The typical driver loop pops *batches* of simultaneous events (within
/// [`TIME_EPSILON`]), advances the clock to the batch time, and lets the
/// owning process(es) handle them:
///
/// ```
/// use conductor_sim::Simulator;
///
/// let mut sim: Simulator<&'static str> = Simulator::new();
/// sim.schedule(1.0, 0, "first");
/// sim.schedule(1.0, 0, "second");
/// sim.schedule(2.0, 0, "later");
/// let mut batch = Vec::new();
/// let t = sim.pop_due(&mut batch).unwrap();
/// assert_eq!(t, 1.0);
/// assert_eq!(batch, vec!["first", "second"]);
/// assert_eq!(sim.now(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    heap: EventHeap<E>,
    clock: SimClock,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator with the clock at hour zero.
    pub fn new() -> Self {
        Self {
            heap: EventHeap::new(),
            clock: SimClock::new(),
        }
    }

    /// Current simulation time in hours.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Schedules `event` at absolute hour `at` with the given ordering
    /// `class` (lower classes pop first among simultaneous events).
    pub fn schedule(&mut self, at: f64, class: u8, event: E) {
        self.heap.push(at, class, event);
    }

    /// Schedules a batch of `(at, class, event)` triples.
    pub fn schedule_all(&mut self, events: impl IntoIterator<Item = (f64, u8, E)>) {
        for (at, class, event) in events {
            self.heap.push(at, class, event);
        }
    }

    /// Schedules an event from *outside* the simulation — an open-world
    /// driver injecting work between steps (a job submission, an operator
    /// action). Unlike [`Simulator::schedule`], the requested time is
    /// clamped to the current clock, so an external injection can never
    /// land in the simulated past and violate the monotonic-handling
    /// contract `pop_due` callers rely on. Returns the effective time the
    /// event was scheduled at.
    pub fn inject(&mut self, at: f64, class: u8, event: E) -> f64 {
        let t = at.max(self.clock.now());
        self.heap.push(t, class, event);
        t
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek_time()
    }

    /// Absolute hour of the *latest* pending event, if any — the horizon
    /// beyond which the clock is silent until something new is scheduled.
    /// Barrier-stepping drivers (the sharded fleet runtime) use this to
    /// bound how far their stepping loop must advance.
    pub fn max_time(&self) -> Option<f64> {
        self.heap.max_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The sequence number the next scheduled event will take; part of a
    /// simulator checkpoint (see [`Simulator::restore`]).
    pub fn next_seq(&self) -> u64 {
        self.heap.next_seq()
    }

    /// Rebuilds a simulator from a checkpoint: the clock time, the pending
    /// events (with their original `(at, class, seq)` keys, e.g. from
    /// [`Simulator::snapshot_entries`]), and the insertion-sequence counter.
    /// The restored simulator pops the identical order and interleaves new
    /// pushes exactly as the original would have.
    pub fn restore(now: f64, entries: Vec<ScheduledEvent<E>>, next_seq: u64) -> Self {
        let mut clock = SimClock::new();
        clock.advance_to(now);
        Self {
            heap: EventHeap::restore(entries, next_seq),
            clock,
        }
    }

    /// Pops the single next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.clock.advance_to(ev.at);
        Some(ev)
    }

    /// Drains every event within [`TIME_EPSILON`] of the earliest pending
    /// event into `batch` (cleared first), advances the clock to the
    /// earliest event's time, and returns that time. Returns `None` when no
    /// events are pending (the batch is left empty).
    ///
    /// Batching simultaneous events is what lets handlers reproduce the
    /// classic "advance to the next horizon, then settle everything due"
    /// loop exactly: all task finishes, allocation steps and data arrivals
    /// that coincide are visible in one wakeup.
    pub fn pop_due(&mut self, batch: &mut Vec<E>) -> Option<f64> {
        batch.clear();
        let first = self.heap.pop()?;
        let t = first.at;
        self.clock.advance_to(t);
        batch.push(first.event);
        while let Some(next_t) = self.heap.peek_time() {
            if next_t <= t + TIME_EPSILON {
                batch.push(self.heap.pop().expect("peeked event present").event);
            } else {
                break;
            }
        }
        Some(t)
    }
}

impl<E: Clone> Simulator<E> {
    /// Every pending event in deterministic pop order, for checkpointing.
    pub fn snapshot_entries(&self) -> Vec<ScheduledEvent<E>> {
        self.heap.snapshot_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_due_batches_simultaneous_events() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule(2.0, 0, 20);
        sim.schedule(1.0, 0, 10);
        sim.schedule(1.0 + TIME_EPSILON / 2.0, 0, 11);
        let mut batch = Vec::new();
        assert_eq!(sim.pop_due(&mut batch), Some(1.0));
        assert_eq!(batch, vec![10, 11]);
        assert_eq!(sim.len(), 1);
        assert_eq!(sim.pop_due(&mut batch), Some(2.0));
        assert_eq!(batch, vec![20]);
        assert_eq!(sim.pop_due(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn classes_layer_simultaneous_events_deterministically() {
        // The fleet's layering: arrival(0) < job(1) < revocation(2) <
        // monitor(9) — scheduled here in scrambled order, twice, to check
        // both the class sort and FIFO within a class.
        let mut sim: Simulator<&str> = Simulator::new();
        sim.schedule(5.0, 9, "monitor");
        sim.schedule(5.0, 2, "revocation-a");
        sim.schedule(5.0, 0, "arrival");
        sim.schedule(5.0, 1, "job-a");
        sim.schedule(5.0, 2, "revocation-b");
        sim.schedule(5.0, 1, "job-b");
        let mut batch = Vec::new();
        assert_eq!(sim.pop_due(&mut batch), Some(5.0));
        assert_eq!(
            batch,
            vec![
                "arrival",
                "job-a",
                "job-b",
                "revocation-a",
                "revocation-b",
                "monitor"
            ]
        );
    }

    #[test]
    fn clock_is_monotonic_even_for_stale_events() {
        let mut sim: Simulator<&str> = Simulator::new();
        sim.schedule(5.0, 0, "late");
        assert!(sim.pop().is_some());
        assert_eq!(sim.now(), 5.0);
        // An event scheduled in the past still pops, but never rewinds time.
        sim.schedule(1.0, 0, "stale");
        let ev = sim.pop().unwrap();
        assert_eq!(ev.at, 1.0);
        assert_eq!(sim.now(), 5.0);
    }

    #[test]
    fn inject_clamps_external_events_to_the_present() {
        let mut sim: Simulator<&str> = Simulator::new();
        sim.schedule(5.0, 0, "advance");
        assert!(sim.pop().is_some());
        assert_eq!(sim.now(), 5.0);
        // An external injection aimed at the past lands *now*, not then.
        assert_eq!(sim.inject(1.0, 0, "late-submission"), 5.0);
        let ev = sim.pop().unwrap();
        assert_eq!(ev.at, 5.0);
        assert_eq!(ev.event, "late-submission");
        // Future injections keep their requested time.
        assert_eq!(sim.inject(7.5, 0, "future"), 7.5);
        assert_eq!(sim.pop().unwrap().at, 7.5);
    }

    #[test]
    fn snapshot_restore_reproduces_pop_order_and_interleaving() {
        let mut a: Simulator<u32> = Simulator::new();
        let pushes = [(1.0, 1u8), (1.0, 0), (0.5, 3), (1.0, 1), (2.0, 2)];
        for (i, &(t, c)) in pushes.iter().enumerate() {
            a.schedule(t, c, i as u32);
        }
        a.pop();
        let mut b = Simulator::restore(a.now(), a.snapshot_entries(), a.next_seq());
        assert_eq!(b.now(), a.now());
        // New pushes after the checkpoint must tie-break identically: the
        // restored sequence counter continues where the original left off.
        a.schedule(1.0, 1, 99);
        b.schedule(1.0, 1, 99);
        let drain = |s: &mut Simulator<u32>| {
            std::iter::from_fn(|| s.pop().map(|e| (e.at, e.class, e.seq, e.event)))
                .collect::<Vec<_>>()
        };
        assert_eq!(drain(&mut a), drain(&mut b));
    }

    #[test]
    fn schedule_all_accepts_iterators() {
        let mut sim: Simulator<usize> = Simulator::new();
        sim.schedule_all((0..4).map(|i| (i as f64, 0u8, i)));
        let mut seen = Vec::new();
        while let Some(ev) = sim.pop() {
            seen.push(ev.event);
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
