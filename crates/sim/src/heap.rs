//! The event heap: a priority queue over `(time, class, sequence)` keys.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event, as returned by [`EventHeap::pop`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<E> {
    /// Absolute simulation hour at which the event fires.
    pub at: f64,
    /// Ordering class among simultaneous events (lower pops first).
    pub class: u8,
    /// Insertion sequence number (ties within a class pop FIFO).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// The heap key. Ordered by time, then class, then insertion sequence, so
/// popping is fully deterministic: two heaps fed the same pushes always pop
/// the same order, regardless of payload type or platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    // `f64::total_cmp` ordering; times are finite in practice but the key
    // is total either way.
    at_bits: u64,
    class: u8,
    seq: u64,
}

impl Key {
    fn new(at: f64, class: u8, seq: u64) -> Self {
        // Map f64 to lexicographically ordered bits (same trick total_cmp
        // uses): flip all bits for negatives, flip the sign bit otherwise.
        let bits = at.to_bits();
        let at_bits = if bits >> 63 == 1 {
            !bits
        } else {
            bits ^ (1 << 63)
        };
        Self {
            at_bits,
            class,
            seq,
        }
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_bits
            .cmp(&other.at_bits)
            .then(self.class.cmp(&other.class))
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Key,
    at: f64,
    event: E,
}

// BinaryHeap is a max-heap; reverse the key comparison to pop earliest
// first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

/// A deterministic event priority queue.
///
/// Events pop in `(time, class, insertion order)` order. The `class` lets a
/// caller pin relative ordering among simultaneous events of different
/// kinds (e.g. "data arrivals settle before allocation steps"); within one
/// class, simultaneous events pop in the order they were pushed.
#[derive(Debug, Clone, Default)]
pub struct EventHeap<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventHeap<E> {
    /// An empty heap.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute hour `at` in ordering class `class`.
    pub fn push(&mut self, at: f64, class: u8, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Key::new(at, class, seq),
            at,
            event,
        });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Time of the *latest* pending event — the horizon beyond which this
    /// heap is known to be silent (until something new is pushed). A
    /// barrier-stepping driver uses this to bound its stepping loop
    /// instead of guessing an end time. O(n) scan; the heap is ordered by
    /// earliest, not latest.
    pub fn max_time(&self) -> Option<f64> {
        self.heap.iter().map(|e| e.at).reduce(f64::max)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| ScheduledEvent {
            at: e.at,
            class: e.key.class,
            seq: e.key.seq,
            event: e.event,
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The sequence number the next [`EventHeap::push`] will take. Part of
    /// a heap checkpoint: restoring it means pushes after resume continue
    /// the FIFO tie-break exactly where the original run left off.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuilds a heap from checkpointed entries. Each entry keeps its
    /// original `(at, class, seq)` key — including the bit-exact `f64` time
    /// mapping — so the restored heap pops in the identical order, and
    /// `next_seq` resumes the insertion counter for subsequent pushes.
    pub fn restore(entries: Vec<ScheduledEvent<E>>, next_seq: u64) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for e in entries {
            heap.push(Entry {
                key: Key::new(e.at, e.class, e.seq),
                at: e.at,
                event: e.event,
            });
        }
        Self { heap, next_seq }
    }
}

impl<E: Clone> EventHeap<E> {
    /// Every pending event in deterministic pop order, with its original
    /// insertion sequence. Feeding the result to [`EventHeap::restore`]
    /// (with [`EventHeap::next_seq`]) reproduces this heap exactly.
    pub fn snapshot_entries(&self) -> Vec<ScheduledEvent<E>> {
        let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
        entries.sort_by_key(|e| e.key);
        entries
            .into_iter()
            .map(|e| ScheduledEvent {
                at: e.at,
                class: e.key.class,
                seq: e.key.seq,
                event: e.event.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(3.0, 0, "c");
        h.push(1.0, 0, "a");
        h.push(2.0, 0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| h.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn class_breaks_time_ties_then_fifo() {
        let mut h = EventHeap::new();
        h.push(1.0, 2, "low-prio-first-pushed");
        h.push(1.0, 0, "hi-prio-a");
        h.push(1.0, 1, "mid");
        h.push(1.0, 0, "hi-prio-b");
        let order: Vec<&str> = std::iter::from_fn(|| h.pop().map(|e| e.event)).collect();
        assert_eq!(
            order,
            vec!["hi-prio-a", "hi-prio-b", "mid", "low-prio-first-pushed"]
        );
    }

    #[test]
    fn negative_and_zero_times_order_correctly() {
        let mut h = EventHeap::new();
        h.push(0.0, 0, 0);
        h.push(-1.0, 0, -1);
        h.push(-0.0, 0, 0);
        h.push(1.0, 0, 1);
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![-1, 0, 0, 1]);
    }

    #[test]
    fn determinism_across_identical_push_sequences() {
        let pushes = [(1.0, 1u8), (1.0, 0), (0.5, 3), (1.0, 1), (0.5, 3)];
        let run = || {
            let mut h = EventHeap::new();
            for (i, &(t, c)) in pushes.iter().enumerate() {
                h.push(t, c, i);
            }
            std::iter::from_fn(|| h.pop().map(|e| e.event)).collect::<Vec<usize>>()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![2, 4, 1, 0, 3]);
    }

    #[test]
    fn max_time_tracks_latest_pending_event() {
        let mut h = EventHeap::new();
        assert_eq!(h.max_time(), None);
        h.push(2.0, 0, ());
        h.push(5.0, 0, ());
        h.push(1.0, 0, ());
        assert_eq!(h.max_time(), Some(5.0));
        h.pop();
        assert_eq!(h.max_time(), Some(5.0));
        h.pop();
        h.pop();
        assert_eq!(h.max_time(), None);
    }

    #[test]
    fn len_and_peek_track_contents() {
        let mut h = EventHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.peek_time(), None);
        h.push(2.0, 0, ());
        h.push(1.0, 0, ());
        assert_eq!(h.len(), 2);
        assert_eq!(h.peek_time(), Some(1.0));
        h.pop();
        assert_eq!(h.peek_time(), Some(2.0));
    }
}
