//! The simulation clock: a monotonically advancing time in hours.

use serde::{Deserialize, Serialize};

/// A monotonic simulation clock.
///
/// Time is measured in fractional hours (the unit used throughout the
/// Conductor reproduction). The clock only ever moves forward:
/// [`SimClock::advance_to`] with a time in the past is a no-op, so a stale
/// event can never rewind the world.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at hour zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in hours.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock to `at` hours; never moves backwards. Returns the
    /// (possibly unchanged) current time.
    pub fn advance_to(&mut self, at: f64) -> f64 {
        if at > self.now {
            self.now = at;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_forward_only() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.advance_to(2.5), 2.5);
        assert_eq!(c.advance_to(1.0), 2.5);
        assert_eq!(c.advance_to(3.0), 3.0);
        assert_eq!(c.now(), 3.0);
    }
}
