//! Criterion bench: ablations of Conductor's design choices (DESIGN.md §6):
//! time-step granularity, the semi-continuous phase barrier, and the
//! plan-following scheduler.

use conductor_cloud::Catalog;
use conductor_core::{Goal, ModelConfig, ModelInstance, Planner, ResourcePool};
use conductor_lp::SolveOptions;
use conductor_mapreduce::engine::{DeploymentOptions, Engine};
use conductor_mapreduce::scheduler::{LocalityScheduler, PlanFollowingScheduler};
use conductor_mapreduce::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Ablation: planning-interval granularity (1 h vs 30 min) — finer intervals
/// give tighter plans but larger models.
fn bench_timestep_granularity(c: &mut Criterion) {
    let spec = Workload::KMeans32Gb.spec();
    let mut group = c.benchmark_group("ablation_timestep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for (label, interval) in [("1h", 1.0f64), ("30min", 0.5)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &interval, |b, &dt| {
            let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
                .with_compute_only(&["m1.large"]);
            let mut planner = Planner::new(pool).with_solve_options(SolveOptions {
                time_limit: Duration::from_secs(30),
                ..Default::default()
            });
            planner.interval_hours = dt;
            b.iter(|| {
                planner
                    .plan(
                        &spec,
                        Goal::MinimizeCost {
                            deadline_hours: 6.0,
                        },
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Ablation: the semi-continuous Map→Reduce barrier vs a model without a
/// reduce phase at all (what a naive "map-only" cost model would solve).
fn bench_barrier(c: &mut Criterion) {
    let pool =
        ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0).with_compute_only(&["m1.large"]);
    let mut group = c.benchmark_group("ablation_barrier");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for (label, with_reduce) in [("with_barrier", true), ("map_only", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &with_reduce,
            |b, &wr| {
                let mut spec = Workload::KMeans32Gb.spec();
                if !wr {
                    spec.map_output_ratio = 0.0;
                    spec.reduce_output_ratio = 0.0;
                }
                let config = ModelConfig::default();
                b.iter(|| {
                    let model = ModelInstance::build(&pool, &spec, &config).unwrap();
                    model.problem.solve().unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Ablation: plan-following vs locality scheduler under the same (fixed)
/// deployment — the execution-time cost of Hadoop's flexible scheduling.
fn bench_scheduler(c: &mut Criterion) {
    let catalog = Catalog::aws_july_2011();
    let engine = Engine::new(catalog);
    let spec = Workload::KMeans32Gb.spec();
    let uplink = conductor_cloud::catalog::mbps_to_gb_per_hour(16.0);
    let opts = DeploymentOptions {
        deadline_hours: Some(6.0),
        ..DeploymentOptions::new("ablation", uplink).with_nodes("m1.large", 16, 0.0)
    };
    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    group.bench_function("plan_following", |b| {
        let sched = PlanFollowingScheduler::cloud_only_defaults();
        b.iter(|| engine.run(&spec, &opts, &sched).unwrap());
    });
    group.bench_function("locality", |b| {
        b.iter(|| engine.run(&spec, &opts, &LocalityScheduler).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_timestep_granularity,
    bench_barrier,
    bench_scheduler
);
criterion_main!(benches);
