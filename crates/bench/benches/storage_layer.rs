//! Criterion bench: Conductor's storage abstraction layer vs a direct write
//! path (the micro-benchmark behind Figure 15), measured on real in-memory
//! backends: chunked writes/reads through the namenode and client.

use conductor_storage::{BlockKey, FileSystemShim, InMemoryBackend, KeyValueStore, StorageClient};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn client_with_backends() -> StorageClient {
    let mut c = StorageClient::new();
    c.add_backend(InMemoryBackend::local_disk(1), true);
    c.add_backend(InMemoryBackend::local_disk(2), false);
    c.add_backend(InMemoryBackend::local_disk(3), false);
    c.add_backend(InMemoryBackend::object_store(10), false);
    c
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_write");
    for size_kb in [64usize, 1024] {
        let data = vec![7u8; size_kb * 1024];
        group.throughput(Throughput::Bytes(data.len() as u64));
        // Conductor's full path: namenode placement + 3-way replication.
        group.bench_with_input(
            BenchmarkId::new("conductor_layer", size_kb),
            &data,
            |b, data| {
                let mut client = client_with_backends();
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    client
                        .write(BlockKey::chunk("bench", i), data.clone())
                        .unwrap()
                });
            },
        );
        // Direct single-backend write (the HDFS-like baseline).
        group.bench_with_input(
            BenchmarkId::new("direct_backend", size_kb),
            &data,
            |b, data| {
                let mut backend = InMemoryBackend::local_disk(1);
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    backend
                        .put(BlockKey::chunk("bench", i), data.clone())
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_file_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_file_roundtrip");
    let data = vec![3u8; 4 * 1024 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("write_read_4mb_file", |b| {
        let mut fs = FileSystemShim::with_chunk_size(client_with_backends(), 256 * 1024);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let name = format!("file-{i}");
            fs.write_file(&name, &data).unwrap();
            fs.read_file(&name).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_write_path, bench_file_roundtrip);
criterion_main!(benches);
