//! Criterion bench: fleet churn at scale and the kernel dispatch hot path.
//!
//! `churn/poisson_fleet` runs a Poisson-arrival fleet (mixed 8/16/32 GB
//! tenants, shared 150-node cap, storm-bearing AWS-like spot trace with a
//! 0.30 bid) end to end — admission planning, concurrent executions,
//! revocation storms and monitor re-plans on one shared kernel. It is
//! planner-dominated by design: its trajectory tracks the *service* path.
//!
//! `churn/dispatch_hot_path` isolates the kernel term: one planner-free
//! 256 GB deployment (4096 map tasks, 100 nodes). This is the number the
//! per-location dispatch index in `JobExecution::dispatch` roughly halves
//! versus the old O(tasks · idle nodes) scan, and the one to watch as
//! individual executions grow.

use conductor_bench::experiments::{churn_fixture, dispatch_hot_path_report, run_fleet_online};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(30));
    group.bench_function("poisson_fleet", |b| {
        // Driven through the incremental Fleet API (arrivals submitted
        // online), so the bench measures the path real clients take; it is
        // pinned bitwise-identical to the batch wrapper.
        let (requests, service) = churn_fixture(40, 1.0);
        b.iter(|| run_fleet_online(&service, &requests));
    });
    group.bench_function("dispatch_hot_path", |b| {
        b.iter(dispatch_hot_path_report);
    });
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
