//! Criterion bench: LP/MILP solve time for Conductor models of growing size
//! (the statistical counterpart of Figure 16).

use conductor_core::{Goal, ModelConfig, ModelInstance, Planner, ResourcePool};
use conductor_cloud::Catalog;
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_model_build(c: &mut Criterion) {
    let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
        .with_compute_only(&["m1.large"]);
    let spec = Workload::KMeans32Gb.spec();
    let mut group = c.benchmark_group("model_build");
    for horizon in [6usize, 12, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, &h| {
            let config = ModelConfig { horizon_intervals: h, ..Default::default() };
            b.iter(|| ModelInstance::build(&pool, &spec, &config).unwrap());
        });
    }
    group.finish();
}

fn bench_plan_solve(c: &mut Criterion) {
    let spec = Workload::KMeans32Gb.spec();
    let mut group = c.benchmark_group("plan_solve");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    for deadline in [6.0f64, 8.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{deadline}h")),
            &deadline,
            |b, &d| {
                let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
                    .with_compute_only(&["m1.large"]);
                let planner = Planner::new(pool).with_solve_options(SolveOptions {
                    time_limit: Duration::from_secs(30),
                    ..Default::default()
                });
                b.iter(|| planner.plan(&spec, Goal::MinimizeCost { deadline_hours: d }).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_build, bench_plan_solve);
criterion_main!(benches);
