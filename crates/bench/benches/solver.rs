//! Criterion bench: LP/MILP solve time for Conductor models of growing size
//! (the statistical counterpart of Figure 16), plus before/after comparisons
//! of the solver configurations: the preserved seed implementation, the
//! flat-tableau solver cold, and the warm-started solver (the default).

use conductor_cloud::Catalog;
use conductor_core::{Goal, ModelConfig, ModelInstance, Planner, ResourcePool};
use conductor_lp::{Engine, SolveOptions};
use conductor_mapreduce::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn pool() -> ResourcePool {
    ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0).with_compute_only(&["m1.large"])
}

fn bench_model_build(c: &mut Criterion) {
    let pool = pool();
    let spec = Workload::KMeans32Gb.spec();
    let mut group = c.benchmark_group("model_build");
    for horizon in [6usize, 12, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, &h| {
            let config = ModelConfig {
                horizon_intervals: h,
                ..Default::default()
            };
            b.iter(|| ModelInstance::build(&pool, &spec, &config).unwrap());
        });
    }
    group.finish();
}

fn bench_plan_solve(c: &mut Criterion) {
    let spec = Workload::KMeans32Gb.spec();
    let mut group = c.benchmark_group("plan_solve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for deadline in [6.0f64, 8.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{deadline}h")),
            &deadline,
            |b, &d| {
                let planner = Planner::new(pool()).with_solve_options(SolveOptions {
                    time_limit: Duration::from_secs(30),
                    ..Default::default()
                });
                b.iter(|| {
                    planner
                        .plan(&spec, Goal::MinimizeCost { deadline_hours: d })
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Seed vs cold vs warm on the same planning workload — the headline
/// comparison this PR's tentpole is about. Expect warm << cold < seed.
fn bench_solver_configurations(c: &mut Criterion) {
    let spec = Workload::KMeans32Gb.spec();
    let mut group = c.benchmark_group("solver_config");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let configs: [(&str, SolveOptions); 3] = [
        (
            "seed",
            SolveOptions {
                engine: Engine::SeedBaseline,
                ..Default::default()
            },
        ),
        (
            "cold",
            SolveOptions {
                warm_start: false,
                ..Default::default()
            },
        ),
        ("warm", SolveOptions::default()),
    ];
    for (label, opts) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            let planner = Planner::new(pool()).with_solve_options(SolveOptions {
                time_limit: Duration::from_secs(30),
                ..opts.clone()
            });
            b.iter(|| {
                planner
                    .plan(
                        &spec,
                        Goal::MinimizeCost {
                            deadline_hours: 6.0,
                        },
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Horizon sweep: how solve time scales with model size (Figure 16's x-axis),
/// and the same sweep with migration variables enabled.
fn bench_horizon_sweep(c: &mut Criterion) {
    let spec = Workload::KMeans32Gb.spec();
    let mut group = c.benchmark_group("horizon_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for migration in [false, true] {
        for deadline in [6.0f64, 8.0, 10.0] {
            let label = format!("{deadline}h{}", if migration { "-mig" } else { "" });
            group.bench_with_input(BenchmarkId::from_parameter(label), &deadline, |b, &d| {
                let planner = Planner::new(pool())
                    .with_migration(migration)
                    .with_solve_options(SolveOptions {
                        time_limit: Duration::from_secs(30),
                        ..Default::default()
                    });
                b.iter(|| {
                    planner
                        .plan(&spec, Goal::MinimizeCost { deadline_hours: d })
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_model_build,
    bench_plan_solve,
    bench_solver_configurations,
    bench_horizon_sweep
);
criterion_main!(benches);
