//! Criterion bench: the fleet-level orchestration hot path.
//!
//! `fleet/four_tenant_contention` runs the full multi-tenant scenario —
//! four admissions planned against residual capacity, four concurrent
//! executions on one shared event kernel, periodic monitor ticks.
//! `fleet/single_tenant_overhead` is the same machinery with one job,
//! isolating the kernel + service overhead over a bare `Engine::run`.
//! For the fleet-*scale* trajectory — hundreds of Poisson arrivals,
//! revocation storms, the dispatch hot path — the canonical metric moved
//! to the `churn` bench (`benches/churn.rs`) and the `fleet_churn` binary;
//! this four-tenant group stays as the small, stable contention probe.

use conductor_bench::experiments::{fleet_contention_requests, fleet_contention_service};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fleet_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    group.bench_function("four_tenant_contention", |b| {
        let service = fleet_contention_service(17);
        let requests = fleet_contention_requests();
        b.iter(|| service.run(&requests).unwrap());
    });
    group.bench_function("single_tenant_overhead", |b| {
        let service = fleet_contention_service(17);
        let requests = fleet_contention_requests()[..1].to_vec();
        b.iter(|| service.run(&requests).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_contention);
criterion_main!(benches);
