//! Criterion bench: end-to-end planning + simulated deployment of the
//! paper's headline scenario (the "modest overhead" claim of §6.2/§6.6).

use conductor_bench::experiments::solver_options;
use conductor_cloud::Catalog;
use conductor_core::{Goal, JobController, Planner, ResourcePool};
use conductor_lp::Engine;
use conductor_mapreduce::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    group.bench_function("plan_and_deploy_cloud_only", |b| {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        let planner = Planner::new(pool).with_solve_options(solver_options());
        let controller =
            JobController::new(catalog, planner).expect("planner pool matches the catalog");
        let spec = Workload::KMeans32Gb.spec();
        b.iter(|| {
            controller
                .run(
                    &spec,
                    Goal::MinimizeCost {
                        deadline_hours: 6.0,
                    },
                )
                .unwrap()
        });
    });
    group.finish();
}

/// The same end-to-end run driven by the preserved seed solver, so the
/// planner-level impact of the solver rework stays measurable.
fn bench_end_to_end_seed_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    group.bench_function("plan_and_deploy_cloud_only_seed_solver", |b| {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        let options = conductor_lp::SolveOptions {
            engine: Engine::SeedBaseline,
            ..solver_options()
        };
        let planner = Planner::new(pool).with_solve_options(options);
        let controller =
            JobController::new(catalog, planner).expect("planner pool matches the catalog");
        let spec = Workload::KMeans32Gb.spec();
        b.iter(|| {
            controller
                .run(
                    &spec,
                    Goal::MinimizeCost {
                        deadline_hours: 6.0,
                    },
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_end_to_end_seed_solver);
criterion_main!(benches);
