//! A tiny table type so every experiment prints the same way (and can be
//! embedded in EXPERIMENTS.md as markdown).

use std::fmt;

/// A labelled table of floating-point results.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"Figure 5: monetary cost, cloud-only"`).
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: a label plus one value per data column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.rows.push((label.into(), values));
    }

    /// Looks up a value by row label and column index.
    pub fn value(&self, row: &str, col: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(r, _)| r == row)
            .and_then(|(_, v)| v.get(col))
            .copied()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for (label, values) in &self.rows {
            let vals: Vec<String> = values.iter().map(|v| format_value(*v)).collect();
            out.push_str(&format!("| {} | {} |\n", label, vals.join(" | ")));
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:<28}", self.columns[0])?;
        for c in &self.columns[1..] {
            write!(f, "{c:>16}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<28}")?;
            for v in values {
                write!(f, "{:>16}", format_value(*v))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new("Figure X", &["option", "cost", "time"]);
        t.push("conductor", vec![27.5, 5.1]);
        t.push("hadoop-s3", vec![70.2, 5.9]);
        assert_eq!(t.value("conductor", 0), Some(27.5));
        assert_eq!(t.value("hadoop-s3", 1), Some(5.9));
        assert_eq!(t.value("missing", 0), None);
    }

    #[test]
    fn renders_markdown_and_text() {
        let mut t = Table::new("T", &["row", "v"]);
        t.push("a", vec![1250.3]);
        t.push("b", vec![0.125]);
        let md = t.to_markdown();
        assert!(md.contains("| row | v |"));
        assert!(md.contains("| a | 1250 |"));
        assert!(md.contains("| b | 0.125 |"));
        let text = t.to_string();
        assert!(text.contains("== T =="));
    }
}
