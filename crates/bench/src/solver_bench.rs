//! Before/after comparison harness for the planner's MIP solver.
//!
//! Runs the fig16-style planning workloads through three solver
//! configurations — the preserved seed implementation, the flat-tableau
//! solver with warm starts disabled, and the full warm-started solver — and
//! reports wall-clock, solution quality and warm-start statistics. The
//! `fig16_solve_time` binary serializes this report to `BENCH_solver.json`
//! so the perf trajectory is tracked across PRs.

use conductor_cloud::{catalog::mbps_to_gb_per_hour, Catalog};
use conductor_core::{Goal, Planner, PlanningReport, ResourcePool};
use conductor_lp::SolveOptions;
use conductor_mapreduce::{JobSpec, Workload};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One workload × solver-configuration measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverBenchRow {
    /// Workload label, e.g. `kmeans-64gb-mig` for the migration-enabled run.
    pub workload: String,
    /// Input size driving the model's horizon.
    pub input_gb: u32,
    /// Planning interval length (larger inputs use coarser intervals, as in
    /// Figure 16).
    pub interval_hours: f64,
    /// Whether the model includes migration variables.
    pub migration: bool,
    /// End-to-end planning wall-clock (model build + solve), milliseconds.
    pub seed_total_ms: f64,
    pub cold_total_ms: f64,
    pub warm_total_ms: f64,
    /// Solver-only wall-clock, milliseconds.
    pub seed_solve_ms: f64,
    pub cold_solve_ms: f64,
    pub warm_solve_ms: f64,
    /// Plan cost (objective) per configuration — must agree within the gap.
    pub seed_cost: f64,
    pub cold_cost: f64,
    pub warm_cost: f64,
    /// Warm-configuration branch & bound statistics.
    pub nodes: usize,
    pub simplex_iterations: usize,
    pub warm_start_hits: usize,
    pub warm_start_misses: usize,
    pub warm_start_rate: f64,
    /// `seed_solve_ms / warm_solve_ms`.
    pub speedup_vs_seed: f64,
}

/// The full report: rows plus aggregate summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverBenchReport {
    /// How to regenerate this file.
    pub generated_by: String,
    /// The relative MIP gap all configurations solve to.
    pub relative_gap: f64,
    pub rows: Vec<SolverBenchRow>,
    /// Minimum per-row speedup of the warm solver over the seed solver.
    pub min_speedup_vs_seed: f64,
    /// Geometric mean of the per-row speedups.
    pub geomean_speedup_vs_seed: f64,
    /// Warm-start hits / attempts across all rows.
    pub overall_warm_start_rate: f64,
}

/// Solve options shared by every configuration (fig16's gap, a generous cap
/// so none of the measured sizes are time-limited).
fn bench_options() -> SolveOptions {
    SolveOptions {
        time_limit: Duration::from_secs(120),
        ..Default::default()
    }
}

fn planner_for(input_gb: u32, migration: bool) -> Planner {
    let pool =
        ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0).with_compute_only(&["m1.large"]);
    let mut planner = Planner::new(pool).with_migration(migration);
    // Figure 16 keeps the comparison fair across input sizes by coarsening
    // the interval for long horizons; 64 GB also gets the coarser interval
    // here so no configuration is time-limited.
    planner.interval_hours = if input_gb > 32 { 2.0 } else { 1.0 };
    planner
}

fn spec_for(input_gb: u32) -> (JobSpec, f64) {
    let spec = Workload::KMeansScaled { input_gb }.spec();
    let spec = JobSpec {
        reference_throughput_gbph: 6.2,
        ..spec
    };
    let upload_hours = spec.input_gb / mbps_to_gb_per_hour(16.0);
    let deadline = (upload_hours * 1.3).ceil().max(6.0);
    (spec, deadline)
}

fn run_one(
    input_gb: u32,
    migration: bool,
    options: SolveOptions,
) -> (f64, f64, f64, PlanningReport) {
    let planner = planner_for(input_gb, migration).with_solve_options(options);
    let (spec, deadline) = spec_for(input_gb);
    let t0 = Instant::now();
    let (plan, report) = planner
        .plan(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
        )
        .expect("solver bench planning");
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    (
        total_ms,
        report.solve_time.as_secs_f64() * 1e3,
        plan.expected_cost,
        report,
    )
}

/// Repetitions per configuration; the minimum is reported (standard practice
/// for wall-clock microbenchmarks — the minimum is the least noisy estimator
/// of the true cost).
const REPS: usize = 5;

fn run_best(
    input_gb: u32,
    migration: bool,
    options: SolveOptions,
) -> (f64, f64, f64, PlanningReport) {
    (0..REPS)
        .map(|_| run_one(input_gb, migration, options.clone()))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one repetition")
}

/// Measures one workload under all three configurations.
pub fn bench_workload(input_gb: u32, migration: bool) -> SolverBenchRow {
    let seed_opts = SolveOptions {
        seed_baseline: true,
        ..bench_options()
    };
    let cold_opts = SolveOptions {
        warm_start: false,
        ..bench_options()
    };
    let warm_opts = bench_options();

    let (seed_total, seed_solve, seed_cost, _) = run_best(input_gb, migration, seed_opts);
    let (cold_total, cold_solve, cold_cost, _) = run_best(input_gb, migration, cold_opts);
    let (warm_total, warm_solve, warm_cost, report) = run_best(input_gb, migration, warm_opts);

    SolverBenchRow {
        workload: format!("kmeans-{input_gb}gb{}", if migration { "-mig" } else { "" }),
        input_gb,
        interval_hours: if input_gb > 32 { 2.0 } else { 1.0 },
        migration,
        seed_total_ms: seed_total,
        cold_total_ms: cold_total,
        warm_total_ms: warm_total,
        seed_solve_ms: seed_solve,
        cold_solve_ms: cold_solve,
        warm_solve_ms: warm_solve,
        seed_cost,
        cold_cost,
        warm_cost,
        nodes: report.nodes_explored,
        simplex_iterations: report.simplex_iterations,
        warm_start_hits: report.warm_start_hits,
        warm_start_misses: report.warm_start_misses,
        warm_start_rate: report.warm_start_rate(),
        speedup_vs_seed: seed_solve / warm_solve.max(1e-9),
    }
}

/// Runs the whole comparison matrix (fig16 sizes plus a migration-enabled
/// model) and aggregates the summary.
pub fn solver_benchmark() -> SolverBenchReport {
    let matrix: &[(u32, bool)] = &[(32, false), (128, false), (256, false), (128, true)];
    let rows: Vec<SolverBenchRow> = matrix
        .iter()
        .map(|&(gb, mig)| bench_workload(gb, mig))
        .collect();

    let min_speedup = rows
        .iter()
        .map(|r| r.speedup_vs_seed)
        .fold(f64::INFINITY, f64::min);
    let geomean =
        (rows.iter().map(|r| r.speedup_vs_seed.ln()).sum::<f64>() / rows.len() as f64).exp();
    let hits: usize = rows.iter().map(|r| r.warm_start_hits).sum();
    let misses: usize = rows.iter().map(|r| r.warm_start_misses).sum();
    let overall_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };

    SolverBenchReport {
        generated_by: "cargo run --release -p conductor-bench --bin fig16_solve_time".to_string(),
        relative_gap: bench_options().relative_gap,
        rows,
        min_speedup_vs_seed: min_speedup,
        geomean_speedup_vs_seed: geomean,
        overall_warm_start_rate: overall_rate,
    }
}

/// Renders the report as a human-readable table (printed next to the JSON).
pub fn render_report(report: &SolverBenchReport) -> String {
    let mut out = String::from(
        "workload          seed ms    cold ms    warm ms  speedup  warm-rate  cost (seed/warm)\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "{:<16} {:>8.1} {:>10.1} {:>10.1} {:>7.2}x {:>9.0}% {:>8.2}/{:.2}\n",
            r.workload,
            r.seed_solve_ms,
            r.cold_solve_ms,
            r.warm_solve_ms,
            r.speedup_vs_seed,
            r.warm_start_rate * 100.0,
            r.seed_cost,
            r.warm_cost,
        ));
    }
    out.push_str(&format!(
        "min speedup {:.2}x, geomean {:.2}x, overall warm-start rate {:.0}%\n",
        report.min_speedup_vs_seed,
        report.geomean_speedup_vs_seed,
        report.overall_warm_start_rate * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest workload: all three configurations must agree on cost
    /// within the configured gap, and warm starts must actually fire.
    #[test]
    fn configurations_agree_and_warm_starts_fire() {
        let row = bench_workload(32, false);
        let tol = bench_options().relative_gap * row.seed_cost.abs() + 1e-6;
        assert!(
            (row.seed_cost - row.warm_cost).abs() <= 2.0 * tol,
            "seed {} vs warm {}",
            row.seed_cost,
            row.warm_cost
        );
        assert!(
            (row.cold_cost - row.warm_cost).abs() <= 2.0 * tol,
            "cold {} vs warm {}",
            row.cold_cost,
            row.warm_cost
        );
        assert!(row.warm_start_hits > 0, "no warm-start hits: {row:?}");
    }
}
