//! Engine-vs-engine comparison harness for the planner's MIP solver.
//!
//! Runs the fig16-style planning workloads through the three selectable LP
//! engines — the preserved seed implementation (`Engine::SeedBaseline`), the
//! flat dense tableau (`Engine::DenseTableau`) and the sparse revised
//! simplex (`Engine::RevisedSparse`, the default) — and reports wall-clock,
//! plan cost per engine and the revised engine's warm-start/factorization
//! statistics. The `fig16_solve_time` binary serializes this report to
//! `BENCH_solver.json` so the perf trajectory is tracked across PRs.

use crate::experiments::{churn_fixture, run_fleet_online, run_sharded_session};
use conductor_cloud::{catalog::mbps_to_gb_per_hour, Catalog};
use conductor_core::{Goal, Planner, PlanningReport, ResourcePool};
use conductor_lp::{Engine, SolveOptions};
use conductor_mapreduce::{JobSpec, Workload};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One workload × three-engine measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverBenchRow {
    /// Workload label, e.g. `kmeans-64gb-mig` for the migration-enabled run.
    pub workload: String,
    /// Input size driving the model's horizon.
    pub input_gb: u32,
    /// Planning interval length (larger inputs use coarser intervals, as in
    /// Figure 16).
    pub interval_hours: f64,
    /// Whether the model includes migration variables.
    pub migration: bool,
    /// End-to-end planning wall-clock (model build + solve), milliseconds.
    /// Seed columns are `None` when the seed engine cannot complete the
    /// workload (its fragile pivoting exhausts the per-LP iteration cap on
    /// the larger residency-charged models — itself a headline result).
    pub seed_total_ms: Option<f64>,
    pub dense_total_ms: f64,
    pub revised_total_ms: f64,
    /// Solver-only wall-clock, milliseconds.
    pub seed_solve_ms: Option<f64>,
    pub dense_solve_ms: f64,
    pub revised_solve_ms: f64,
    /// Plan cost (objective) per engine — dense and revised must agree to
    /// ~1e-4 relative (identical incumbents except where the 1 % gap stops
    /// the two searches at different-but-equivalent solutions).
    pub seed_cost: Option<f64>,
    pub dense_cost: f64,
    pub revised_cost: f64,
    /// Revised engine with each flagged solver-core upgrade stacked on:
    /// bounded-variable simplex alone, then with Forrest–Tomlin updates,
    /// then with dual steepest-edge pricing too (the full new
    /// configuration). All four revised columns must land on the same
    /// plan cost.
    pub bounded_solve_ms: f64,
    pub bounded_ft_solve_ms: f64,
    pub full_solve_ms: f64,
    pub full_cost: f64,
    /// `revised_solve_ms / full_solve_ms` — the rebuild's per-row gain
    /// over the legacy (span-row, eta-file, Dantzig-repair) engine.
    pub speedup_full_vs_legacy: f64,
    /// Revised-engine branch & bound statistics.
    pub nodes: usize,
    pub simplex_iterations: usize,
    /// Pivot counters for the full new configuration: ratio-test bound
    /// flips (pivots the bounded-variable mode avoided entirely) and
    /// Forrest–Tomlin factor updates (eta appends avoided).
    pub bound_flips: usize,
    pub ft_updates: usize,
    pub warm_start_hits: usize,
    pub warm_start_misses: usize,
    pub warm_start_rate: f64,
    /// LU factorizations performed by the revised engine, and the subset
    /// triggered mid-stream by the eta limit / drift checks.
    pub basis_factorizations: usize,
    pub basis_refactorizations: usize,
    /// `seed_solve_ms / revised_solve_ms` (`None` when the seed engine DNF'd).
    pub speedup_vs_seed: Option<f64>,
    /// `dense_solve_ms / revised_solve_ms`.
    pub speedup_vs_dense: f64,
}

/// Admission throughput on the canonical churn fleet: the same Poisson
/// fixture ([`churn_fixture`]) driven end to end with the admission plan
/// cache off (the deterministic pinned path every figure uses) and on
/// (the certified fast path). `*_admissions_per_sec` counts admission
/// *decisions* — every arrival is planned and then admitted or rejected —
/// over the full end-to-end wall clock including execution simulation,
/// so the number is the fleet-scale metric an operator sees, not a
/// solver microbenchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionBenchRow {
    /// Poisson arrivals in the fixture.
    pub jobs: usize,
    /// End-to-end wall clock with the plan cache off / on, seconds. The
    /// cold and cached runs use the full new solver configuration
    /// (bounded-variables + Forrest–Tomlin + dual steepest-edge) — the
    /// engine this rebuild ships; the legacy columns below keep the
    /// span-row engine's cold path for comparison.
    pub cold_wall_s: f64,
    pub cached_wall_s: f64,
    /// Admission decisions per second of end-to-end wall clock.
    pub cold_admissions_per_sec: f64,
    pub cached_admissions_per_sec: f64,
    /// `cold_wall_s / cached_wall_s` (equals the admissions/sec ratio).
    pub wall_speedup: f64,
    /// Cold path under the legacy revised engine (all new flags off).
    #[serde(default)]
    pub legacy_cold_wall_s: f64,
    #[serde(default)]
    pub legacy_cold_admissions_per_sec: f64,
    /// `legacy_cold_wall_s / cold_wall_s` — the solver-core rebuild's
    /// end-to-end gain on the cold admission path.
    #[serde(default)]
    pub cold_speedup_vs_legacy: f64,
    /// Certified cache hits (branch & bound skipped) and misses on the
    /// cached run.
    pub plan_cache_hits: usize,
    pub plan_cache_misses: usize,
}

/// Sharded-runtime throughput on the canonical churn fleet: the same
/// 200-arrival fixture drained through a [`conductor_core::ShardedFleet`]
/// at 1, 2 and 4 shards (hash routing, no rebalancer, one scoped thread
/// per shard). `threads_available` records the host's parallelism —
/// speedups are only meaningful when it is ≥ the shard count, so CI
/// gates its floor on that field rather than trusting a 1-CPU runner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardScalingRow {
    /// Poisson arrivals in the fixture.
    pub jobs: usize,
    /// `std::thread::available_parallelism()` on the machine that
    /// generated this row.
    pub threads_available: usize,
    /// End-to-end wall clock at 1 / 2 / 4 shards, seconds.
    pub n1_wall_s: f64,
    pub n2_wall_s: f64,
    pub n4_wall_s: f64,
    /// Jobs drained per second of end-to-end wall clock.
    pub n1_jobs_per_sec: f64,
    pub n2_jobs_per_sec: f64,
    pub n4_jobs_per_sec: f64,
    /// `n1_wall_s / n2_wall_s` and `n1_wall_s / n4_wall_s`.
    pub n2_speedup: f64,
    pub n4_speedup: f64,
}

/// Measures [`ShardScalingRow`] on a `jobs`-arrival churn fleet.
pub fn shard_scaling_benchmark(jobs: usize) -> ShardScalingRow {
    let (requests, service) = churn_fixture(jobs, 1.0);
    let mut walls = [0.0f64; 3];
    for (slot, shards) in [(0usize, 1usize), (1, 2), (2, 4)] {
        let t0 = Instant::now();
        let fleet = run_sharded_session(&service, shards, None, &requests);
        walls[slot] = t0.elapsed().as_secs_f64();
        assert_eq!(
            fleet.pending_events(),
            0,
            "the {shards}-shard run drains to quiescence"
        );
    }
    let [n1, n2, n4] = walls;
    ShardScalingRow {
        jobs,
        threads_available: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n1_wall_s: n1,
        n2_wall_s: n2,
        n4_wall_s: n4,
        n1_jobs_per_sec: jobs as f64 / n1.max(1e-9),
        n2_jobs_per_sec: jobs as f64 / n2.max(1e-9),
        n4_jobs_per_sec: jobs as f64 / n4.max(1e-9),
        n2_speedup: n1 / n2.max(1e-9),
        n4_speedup: n1 / n4.max(1e-9),
    }
}

/// The full new solver configuration on top of `base`: bounded-variable
/// simplex, Forrest–Tomlin updates and dual steepest-edge pricing.
fn full_flags(base: SolveOptions) -> SolveOptions {
    SolveOptions {
        bounded_variables: true,
        forrest_tomlin: true,
        dual_steepest_edge: true,
        ..base
    }
}

/// Measures [`AdmissionBenchRow`] on a `jobs`-arrival churn fleet.
pub fn admission_benchmark(jobs: usize) -> AdmissionBenchRow {
    let (requests, service) = churn_fixture(jobs, 1.0);
    let t0 = Instant::now();
    let _legacy_cold = run_fleet_online(&service, &requests);
    let legacy_cold_wall = t0.elapsed().as_secs_f64();
    let full_service = service.with_solve_options(full_flags(crate::experiments::solver_options()));
    let t1 = Instant::now();
    let _cold = run_fleet_online(&full_service, &requests);
    let cold_wall = t1.elapsed().as_secs_f64();
    let cached_service = full_service.with_plan_cache(true);
    let t2 = Instant::now();
    let cached = run_fleet_online(&cached_service, &requests);
    let cached_wall = t2.elapsed().as_secs_f64();
    AdmissionBenchRow {
        jobs,
        cold_wall_s: cold_wall,
        cached_wall_s: cached_wall,
        cold_admissions_per_sec: jobs as f64 / cold_wall.max(1e-9),
        cached_admissions_per_sec: jobs as f64 / cached_wall.max(1e-9),
        wall_speedup: cold_wall / cached_wall.max(1e-9),
        legacy_cold_wall_s: legacy_cold_wall,
        legacy_cold_admissions_per_sec: jobs as f64 / legacy_cold_wall.max(1e-9),
        cold_speedup_vs_legacy: legacy_cold_wall / cold_wall.max(1e-9),
        plan_cache_hits: cached.plan_cache_hits,
        plan_cache_misses: cached.plan_cache_misses,
    }
}

/// The full report: rows plus aggregate summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverBenchReport {
    /// How to regenerate this file.
    pub generated_by: String,
    /// The relative MIP gap all engines solve to.
    pub relative_gap: f64,
    pub rows: Vec<SolverBenchRow>,
    /// Minimum per-row speedup of the revised engine over the seed engine,
    /// over the rows the seed engine completed at all.
    pub min_speedup_vs_seed: Option<f64>,
    /// Geometric mean of the per-row revised-vs-seed speedups (completed
    /// rows only).
    pub geomean_speedup_vs_seed: Option<f64>,
    /// Rows the seed engine failed to complete (per-LP iteration cap).
    pub seed_dnf_rows: usize,
    /// Minimum per-row speedup of the revised engine over the dense tableau.
    pub min_speedup_vs_dense: f64,
    /// Geometric mean of the per-row revised-vs-dense speedups.
    pub geomean_speedup_vs_dense: f64,
    /// Minimum / geometric-mean per-row speedup of the full new solver
    /// configuration (bounded-variables + FT + DSE) over the legacy
    /// revised engine — the CI floor is on the geomean.
    #[serde(default)]
    pub min_speedup_full_vs_legacy: f64,
    #[serde(default)]
    pub geomean_speedup_full_vs_legacy: f64,
    /// Revised-engine warm-start hits / attempts across all rows.
    pub overall_warm_start_rate: f64,
    /// Churn-fleet admission throughput, plan cache off vs on (`None` in
    /// reports generated before the cache existed).
    #[serde(default)]
    pub admission: Option<AdmissionBenchRow>,
    /// Sharded-runtime throughput at 1/2/4 shards (`None` in reports
    /// generated before the sharded fleet existed).
    #[serde(default)]
    pub shard_scaling: Option<ShardScalingRow>,
}

/// Solve options shared by every engine (fig16's gap, a generous cap so none
/// of the measured sizes are time-limited).
fn bench_options() -> SolveOptions {
    SolveOptions {
        time_limit: Duration::from_secs(120),
        ..Default::default()
    }
}

fn planner_for(input_gb: u32, migration: bool) -> Planner {
    let pool =
        ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0).with_compute_only(&["m1.large"]);
    let mut planner = Planner::new(pool).with_migration(migration);
    // Figure 16 keeps the comparison fair across input sizes by coarsening
    // the interval for long horizons; 64 GB also gets the coarser interval
    // here so no configuration is time-limited.
    planner.interval_hours = if input_gb > 32 { 2.0 } else { 1.0 };
    planner
}

fn spec_for(input_gb: u32) -> (JobSpec, f64) {
    // The paper's k-means workload (0.44 GB/h per m1.large) scaled up — the
    // hard, node-heavy models Figure 16 measures.
    let spec = Workload::KMeansScaled { input_gb }.spec();
    let upload_hours = spec.input_gb / mbps_to_gb_per_hour(16.0);
    let deadline = (upload_hours * 1.3).ceil().max(6.0);
    (spec, deadline)
}

fn run_one(
    input_gb: u32,
    migration: bool,
    options: SolveOptions,
) -> Option<(f64, f64, f64, PlanningReport)> {
    let planner = planner_for(input_gb, migration).with_solve_options(options);
    let (spec, deadline) = spec_for(input_gb);
    let t0 = Instant::now();
    let (plan, report) = planner
        .plan(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
        )
        .ok()?;
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    Some((
        total_ms,
        report.solve_time.as_secs_f64() * 1e3,
        plan.expected_cost,
        report,
    ))
}

/// Repetitions per engine; the minimum is reported (standard practice for
/// wall-clock microbenchmarks — the minimum is the least noisy estimator of
/// the true cost).
const REPS: usize = 5;

fn run_best(
    input_gb: u32,
    migration: bool,
    options: SolveOptions,
) -> Option<(f64, f64, f64, PlanningReport)> {
    // A DNF on the first repetition is a DNF for the row (deterministic).
    let mut best: Option<(f64, f64, f64, PlanningReport)> = None;
    for _ in 0..REPS {
        let r = run_one(input_gb, migration, options.clone())?;
        if best.as_ref().is_none_or(|b| r.1 < b.1) {
            best = Some(r);
        }
    }
    best
}

/// Measures one workload under all three engines.
pub fn bench_workload(input_gb: u32, migration: bool) -> SolverBenchRow {
    let engine_opts = |engine: Engine| SolveOptions {
        engine,
        ..bench_options()
    };

    let seed = run_best(input_gb, migration, engine_opts(Engine::SeedBaseline));
    let (dense_total, dense_solve, dense_cost, _) =
        run_best(input_gb, migration, engine_opts(Engine::DenseTableau))
            .expect("dense engine must complete the bench workloads");
    let (revised_total, revised_solve, revised_cost, report) =
        run_best(input_gb, migration, engine_opts(Engine::RevisedSparse))
            .expect("revised engine must complete the bench workloads");

    // The flagged solver-core upgrades, stacked in the order the ablation
    // reads: bounded-variable simplex, + Forrest–Tomlin, + dual
    // steepest-edge (the full new configuration).
    let flagged = |bounded: bool, ft: bool, dse: bool| SolveOptions {
        bounded_variables: bounded,
        forrest_tomlin: ft,
        dual_steepest_edge: dse,
        ..engine_opts(Engine::RevisedSparse)
    };
    let (_, bounded_solve, _, _) = run_best(input_gb, migration, flagged(true, false, false))
        .expect("bounded-variable engine must complete the bench workloads");
    let (_, bounded_ft_solve, _, _) = run_best(input_gb, migration, flagged(true, true, false))
        .expect("bounded+FT engine must complete the bench workloads");
    let (_, full_solve, full_cost, full_report) =
        run_best(input_gb, migration, flagged(true, true, true))
            .expect("full new configuration must complete the bench workloads");

    SolverBenchRow {
        workload: format!("kmeans-{input_gb}gb{}", if migration { "-mig" } else { "" }),
        input_gb,
        interval_hours: if input_gb > 32 { 2.0 } else { 1.0 },
        migration,
        seed_total_ms: seed.as_ref().map(|s| s.0),
        dense_total_ms: dense_total,
        revised_total_ms: revised_total,
        seed_solve_ms: seed.as_ref().map(|s| s.1),
        dense_solve_ms: dense_solve,
        revised_solve_ms: revised_solve,
        seed_cost: seed.as_ref().map(|s| s.2),
        dense_cost,
        revised_cost,
        bounded_solve_ms: bounded_solve,
        bounded_ft_solve_ms: bounded_ft_solve,
        full_solve_ms: full_solve,
        full_cost,
        speedup_full_vs_legacy: revised_solve / full_solve.max(1e-9),
        nodes: report.nodes_explored,
        simplex_iterations: report.simplex_iterations,
        bound_flips: full_report.bound_flips,
        ft_updates: full_report.ft_updates,
        warm_start_hits: report.warm_start_hits,
        warm_start_misses: report.warm_start_misses,
        warm_start_rate: report.warm_start_rate(),
        basis_factorizations: report.basis_factorizations,
        basis_refactorizations: report.basis_refactorizations,
        speedup_vs_seed: seed.as_ref().map(|s| s.1 / revised_solve.max(1e-9)),
        speedup_vs_dense: dense_solve / revised_solve.max(1e-9),
    }
}

/// Runs the whole comparison matrix (fig16 sizes plus a migration-enabled
/// model) and aggregates the summary.
pub fn solver_benchmark() -> SolverBenchReport {
    let matrix: &[(u32, bool)] = &[(32, false), (128, false), (256, false), (128, true)];
    let rows: Vec<SolverBenchRow> = matrix
        .iter()
        .map(|&(gb, mig)| bench_workload(gb, mig))
        .collect();

    let vs_seed: Vec<f64> = rows.iter().filter_map(|r| r.speedup_vs_seed).collect();
    let geomean = |xs: &[f64]| {
        if xs.is_empty() {
            None
        } else {
            Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
        }
    };
    let min_of = |xs: &[f64]| xs.iter().copied().reduce(f64::min);
    let vs_dense: Vec<f64> = rows.iter().map(|r| r.speedup_vs_dense).collect();
    let full_vs_legacy: Vec<f64> = rows.iter().map(|r| r.speedup_full_vs_legacy).collect();
    let hits: usize = rows.iter().map(|r| r.warm_start_hits).sum();
    let misses: usize = rows.iter().map(|r| r.warm_start_misses).sum();
    let overall_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };

    SolverBenchReport {
        generated_by: "cargo run --release -p conductor-bench --bin fig16_solve_time".to_string(),
        relative_gap: bench_options().relative_gap,
        min_speedup_vs_seed: min_of(&vs_seed),
        geomean_speedup_vs_seed: geomean(&vs_seed),
        seed_dnf_rows: rows.iter().filter(|r| r.seed_solve_ms.is_none()).count(),
        min_speedup_vs_dense: min_of(&vs_dense).expect("non-empty matrix"),
        geomean_speedup_vs_dense: geomean(&vs_dense).expect("non-empty matrix"),
        min_speedup_full_vs_legacy: min_of(&full_vs_legacy).expect("non-empty matrix"),
        geomean_speedup_full_vs_legacy: geomean(&full_vs_legacy).expect("non-empty matrix"),
        overall_warm_start_rate: overall_rate,
        admission: Some(admission_benchmark(200)),
        shard_scaling: Some(shard_scaling_benchmark(200)),
        rows,
    }
}

/// Renders the report as a human-readable table (printed next to the JSON).
pub fn render_report(report: &SolverBenchReport) -> String {
    let mut out = String::from(
        "workload          seed ms   dense ms  revised ms  vs seed  vs dense  warm-rate  cost (seed/dense/revised)\n",
    );
    let opt = |v: Option<f64>, decimals: usize, unit: &str| match v {
        Some(x) => format!("{x:>8.decimals$}{unit}"),
        None => format!("{:>8}{unit}", "DNF"),
    };
    for r in &report.rows {
        out.push_str(&format!(
            "{:<16} {} {:>10.1} {:>11.1} {} {:>8.2}x {:>9.0}% {}/{:.2}/{:.2}\n",
            r.workload,
            opt(r.seed_solve_ms, 1, ""),
            r.dense_solve_ms,
            r.revised_solve_ms,
            opt(r.speedup_vs_seed, 2, "x"),
            r.speedup_vs_dense,
            r.warm_start_rate * 100.0,
            r.seed_cost
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "DNF".into()),
            r.dense_cost,
            r.revised_cost,
        ));
    }
    out.push_str(&format!(
        "revised vs seed: min {} geomean {} ({} seed DNF rows) | vs dense: min {:.2}x geomean {:.2}x | warm-start rate {:.0}%\n",
        opt(report.min_speedup_vs_seed, 2, "x"),
        opt(report.geomean_speedup_vs_seed, 2, "x"),
        report.seed_dnf_rows,
        report.min_speedup_vs_dense,
        report.geomean_speedup_vs_dense,
        report.overall_warm_start_rate * 100.0
    ));
    out.push_str(
        "\nsolver-core ablation (revised engine, flags stacked):\n\
         workload          legacy ms  +bounded  +bounded+ft      full  full vs legacy  iterations  bound-flips  ft-updates\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "{:<16} {:>10.1} {:>9.1} {:>12.1} {:>9.1} {:>14.2}x {:>11} {:>12} {:>11}\n",
            r.workload,
            r.revised_solve_ms,
            r.bounded_solve_ms,
            r.bounded_ft_solve_ms,
            r.full_solve_ms,
            r.speedup_full_vs_legacy,
            r.simplex_iterations,
            r.bound_flips,
            r.ft_updates,
        ));
    }
    out.push_str(&format!(
        "full config vs legacy revised: min {:.2}x geomean {:.2}x\n",
        report.min_speedup_full_vs_legacy, report.geomean_speedup_full_vs_legacy,
    ));
    if let Some(a) = &report.admission {
        out.push_str(&format!(
            "churn admissions ({} jobs): cold {:.1}/s ({:.2} s; legacy engine {:.1}/s = {:.2}x), plan cache {:.1}/s ({:.2} s) = {:.2}x, {} hits / {} misses\n",
            a.jobs,
            a.cold_admissions_per_sec,
            a.cold_wall_s,
            a.legacy_cold_admissions_per_sec,
            a.cold_speedup_vs_legacy,
            a.cached_admissions_per_sec,
            a.cached_wall_s,
            a.wall_speedup,
            a.plan_cache_hits,
            a.plan_cache_misses,
        ));
    }
    if let Some(s) = &report.shard_scaling {
        out.push_str(&format!(
            "shard scaling ({} jobs, {} threads): 1 shard {:.1}/s ({:.2} s), 2 shards {:.1}/s = {:.2}x, 4 shards {:.1}/s = {:.2}x\n",
            s.jobs,
            s.threads_available,
            s.n1_jobs_per_sec,
            s.n1_wall_s,
            s.n2_jobs_per_sec,
            s.n2_speedup,
            s.n4_jobs_per_sec,
            s.n4_speedup,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest workload: all three engines must agree on cost within
    /// the configured gap, and revised-engine warm starts must actually fire.
    #[test]
    fn engines_agree_and_warm_starts_fire() {
        let row = bench_workload(32, false);
        let seed_cost = row.seed_cost.expect("seed completes the 32 GB workload");
        let tol = bench_options().relative_gap * seed_cost.abs() + 1e-6;
        assert!(
            (seed_cost - row.revised_cost).abs() <= 2.0 * tol,
            "seed {seed_cost} vs revised {}",
            row.revised_cost
        );
        assert!(
            (row.dense_cost - row.revised_cost).abs() <= 2.0 * tol,
            "dense {} vs revised {}",
            row.dense_cost,
            row.revised_cost
        );
        assert!(row.warm_start_hits > 0, "no warm-start hits: {row:?}");
        assert!(
            row.basis_factorizations > 0,
            "revised engine reported no factorizations: {row:?}"
        );
    }
}
