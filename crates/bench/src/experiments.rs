//! One function per table/figure of the paper's evaluation (§6).
//!
//! Every function is deterministic (fixed seeds) and returns a [`Table`] with
//! the rows/series the corresponding figure plots, so the `figNN_*` binaries
//! and EXPERIMENTS.md all draw from the same code.

use crate::table::Table;
use conductor_cloud::{catalog::mbps_to_gb_per_hour, Catalog, CostCategory, SpotMarket, SpotTrace};
use conductor_core::{
    AdaptiveController, BidPredictor, CircuitBreakerConfig, ConductorService, FailurePolicy,
    FailureThreshold, FaultPlan, FleetJobRequest, FleetReport, Goal, JobController, Planner,
    ResourcePool, RetryPolicy, ShardedFleet, ShardedFleetConfig, SpotDeploymentSimulator,
};
use conductor_lp::SolveOptions;
use conductor_mapreduce::engine::{DataLocation, DeploymentOptions, Engine, ExecutionReport};
use conductor_mapreduce::hdfs::{HdfsModel, StoragePath};
use conductor_mapreduce::scheduler::LocalityScheduler;
use conductor_mapreduce::{JobSpec, Workload};
use conductor_storage::ConductorStorageModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Solver configuration used by the experiments: the paper's 1 % gap but a
/// tighter wall-clock cap so a full experiment sweep stays interactive.
pub fn solver_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    }
}

fn uplink_16() -> f64 {
    mbps_to_gb_per_hour(16.0)
}

// ---------------------------------------------------------------------------
// Figure 1: specified vs measured instance performance.
// ---------------------------------------------------------------------------

/// Figure 1: ECU-projected vs measured application throughput per EC2
/// instance type (the motivation for mistrusting provider specifications).
pub fn fig01_ecu_divergence() -> Table {
    let catalog = Catalog::aws_july_2011();
    let reference = catalog.instance("m1.large").unwrap();
    let mut t = Table::new(
        "Figure 1: specified vs measured performance per instance type",
        &[
            "instance",
            "ECU",
            "projected GB/h",
            "measured GB/h",
            "divergence GB/h",
        ],
    );
    for name in ["m1.large", "m1.xlarge", "c1.xlarge"] {
        let i = catalog.instance(name).unwrap();
        let projected = i.projected_throughput_gbph(reference);
        t.push(
            name,
            vec![
                i.ecu,
                projected,
                i.measured_throughput_gbph,
                projected - i.measured_throughput_gbph,
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 5-7: cloud-only deployments.
// ---------------------------------------------------------------------------

/// The four cloud-only deployments of §6.2, executed on the simulated cluster.
pub fn cloud_only_reports() -> Vec<ExecutionReport> {
    let catalog = Catalog::aws_july_2011();
    let engine = Engine::new(catalog.clone());
    let spec = Workload::KMeans32Gb.spec();
    let uplink = uplink_16();
    let deadline = 6.0;
    let upload_hours = spec.input_gb / uplink;
    let mut reports = Vec::new();

    // Conductor: plan automatically and deploy via the plan-following scheduler.
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let planner = Planner::new(pool).with_solve_options(solver_options());
    let controller =
        JobController::new(catalog.clone(), planner).expect("planner pool matches the catalog");
    let outcome = controller
        .run(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
        )
        .expect("conductor cloud-only plan");
    reports.push(ExecutionReport {
        name: "conductor".into(),
        ..outcome.execution
    });

    // Hadoop upload first.
    let upload_first = DeploymentOptions {
        upload_before_processing: true,
        deadline_hours: Some(deadline),
        ..DeploymentOptions::new("hadoop-upload-first", uplink)
            .with_nodes("m1.large", 1, 0.0)
            .with_nodes("m1.large", 100, upload_hours)
    };
    reports.push(
        engine
            .run(&spec, &upload_first, &LocalityScheduler)
            .expect("upload first"),
    );

    // Hadoop direct.
    let direct = DeploymentOptions {
        upload_plan: vec![],
        deadline_hours: Some(deadline),
        ..DeploymentOptions::new("hadoop-direct", uplink).with_nodes("m1.large", 16, 0.0)
    };
    reports.push(
        engine
            .run(&spec, &direct, &LocalityScheduler)
            .expect("direct"),
    );

    // Hadoop S3.
    let s3 = DeploymentOptions {
        upload_plan: vec![(DataLocation::S3, 1.0)],
        upload_before_processing: true,
        deadline_hours: Some(deadline),
        ..DeploymentOptions::new("hadoop-s3", uplink).with_nodes("m1.large", 100, upload_hours)
    };
    reports.push(engine.run(&spec, &s3, &LocalityScheduler).expect("s3"));

    reports
}

/// Figure 5: monetary cost of the cloud-only deployment options, broken down
/// by category.
pub fn fig05_cloud_cost() -> Table {
    let mut t = Table::new(
        "Figure 5: monetary cost for cloud-only deployment options (USD)",
        &[
            "option",
            "network transfer",
            "computation/EC2",
            "storage/S3",
            "total",
        ],
    );
    for report in cloud_only_reports() {
        t.push(
            report.name.clone(),
            vec![
                report.cost_breakdown.get(CostCategory::NetworkTransfer),
                report.cost_breakdown.get(CostCategory::Computation),
                report.cost_breakdown.get(CostCategory::StorageS3),
                report.total_cost,
            ],
        );
    }
    t
}

/// Figure 6: job completion time of the cloud-only deployment options.
pub fn fig06_cloud_runtime() -> Table {
    let mut t = Table::new(
        "Figure 6: job completion time for cloud-only deployment options (seconds)",
        &[
            "option",
            "upload s",
            "process s",
            "total s",
            "met 6h deadline",
        ],
    );
    for report in cloud_only_reports() {
        let upload_s = report.phases.upload_hours * 3600.0;
        let process_s = (report.completion_hours - report.phases.upload_hours).max(0.0) * 3600.0;
        t.push(
            report.name.clone(),
            vec![
                upload_s,
                process_s,
                report.completion_hours * 3600.0,
                if report.met_deadline == Some(true) {
                    1.0
                } else {
                    0.0
                },
            ],
        );
    }
    t
}

/// Figure 7: cost and runtime when deviating from the planned node count
/// (11 / 16 / 21 m1.large nodes, cloud-only).
pub fn fig07_node_sweep() -> Table {
    let catalog = Catalog::aws_july_2011();
    let engine = Engine::new(catalog);
    let spec = Workload::KMeans32Gb.spec();
    let uplink = uplink_16();
    let mut t = Table::new(
        "Figure 7: deviating from the planned node count (cloud-only)",
        &["nodes", "cost USD", "runtime s", "met 6h deadline"],
    );
    for nodes in [11usize, 16, 21] {
        let opts = DeploymentOptions {
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new(format!("{nodes}-nodes"), uplink)
                .with_nodes("m1.large", nodes, 0.0)
        };
        let report = engine
            .run(&spec, &opts, &LocalityScheduler)
            .expect("node sweep run");
        t.push(
            format!("{nodes} nodes"),
            vec![
                report.total_cost,
                report.completion_hours * 3600.0,
                if report.met_deadline == Some(true) {
                    1.0
                } else {
                    0.0
                },
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 8-9: storage-mix sweeps.
// ---------------------------------------------------------------------------

/// Figure 8: total job cost as a function of the fraction of the 32 GB input
/// stored on EC2 disks (the rest goes to S3). 8 Mbit/s uplink, fast-scan
/// workload (6.2 GB/h per node).
pub fn fig08_storage_mix() -> Table {
    let catalog = Catalog {
        uplink_mbps: 8.0,
        ..Catalog::aws_july_2011()
    };
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let planner = Planner::new(pool).with_solve_options(solver_options());
    let spec = Workload::KMeansFastScan32Gb.spec();
    let deadline = 12.0; // the upload alone takes ~9.5 h at 8 Mbit/s
    let mut t = Table::new(
        "Figure 8: total job cost vs fraction of 32 GB stored on EC2 (USD)",
        &["fraction on EC2", "cost USD"],
    );
    for i in 0..=10 {
        let fraction = i as f64 / 10.0;
        let cost = planner
            .cost_with_storage_fraction(&spec, deadline, "EC2-disk", fraction)
            .expect("storage mix point");
        t.push(format!("{fraction:.1}"), vec![cost]);
    }
    t
}

/// Figure 9: the same sweep computed analytically for larger inputs
/// (64/128/256 GB) with S3 storage priced ten times higher.
pub fn fig09_storage_mix_scaled() -> Table {
    let mut catalog = Catalog {
        uplink_mbps: 8.0,
        ..Catalog::aws_july_2011()
    };
    for s in &mut catalog.storages {
        if s.name == "S3" {
            s.cost_per_gb_hour *= 10.0;
        }
    }
    let mut t = Table::new(
        "Figure 9: cost vs fraction stored on EC2, larger inputs, 10x S3 price (USD)",
        &["fraction on EC2", "64 GB", "128 GB", "256 GB"],
    );
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
    for input_gb in [64u32, 128, 256] {
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        let mut planner = Planner::new(pool).with_solve_options(solver_options());
        // Coarser intervals keep the model size manageable for long uploads.
        planner.interval_hours = 4.0;
        let spec = Workload::KMeansScaled { input_gb }.spec();
        let spec = JobSpec {
            reference_throughput_gbph: 6.2,
            ..spec
        };
        let upload_hours = spec.input_gb / mbps_to_gb_per_hour(8.0);
        let deadline = (upload_hours * 1.3).ceil().max(12.0);
        for (fi, fraction) in fractions.iter().enumerate() {
            let cost = planner
                .cost_with_storage_fraction(&spec, deadline, "EC2-disk", *fraction)
                .expect("scaled storage mix point");
            columns[fi].push(cost);
        }
    }
    for (fi, fraction) in fractions.iter().enumerate() {
        t.push(format!("{fraction:.1}"), columns[fi].clone());
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 10-11: hybrid deployments.
// ---------------------------------------------------------------------------

/// Figure 10: hybrid deployment (5 free local nodes + EC2, 4 h deadline),
/// Conductor vs a manually configured Hadoop/HDFS deployment with the same
/// number of EC2 instances.
pub fn fig10_hybrid() -> Table {
    let catalog = Catalog::aws_with_local_cluster(5);
    let spec = Workload::KMeans32Gb.spec();
    let uplink = uplink_16();
    let deadline = 4.0;

    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large", "local"]);
    let planner = Planner::new(pool).with_solve_options(solver_options());
    let controller =
        JobController::new(catalog.clone(), planner).expect("planner pool matches the catalog");
    let outcome = controller
        .run(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
        )
        .expect("hybrid plan");
    let conductor_nodes = outcome.plan.peak_nodes("m1.large").max(1);

    // Hadoop baseline: the user guessed the same EC2 node count, HDFS across
    // the joint cluster, locality scheduling.
    let engine = Engine::new(catalog);
    let hadoop = DeploymentOptions {
        deadline_hours: Some(deadline),
        ..DeploymentOptions::new("hadoop-hdfs", uplink)
            .with_nodes("m1.large", conductor_nodes, 0.0)
            .with_nodes("local", 5, 0.0)
    };
    let hadoop_report = engine
        .run(&spec, &hadoop, &LocalityScheduler)
        .expect("hybrid hadoop");

    let mut t = Table::new(
        "Figure 10: hybrid deployment, Conductor vs Hadoop (same EC2 node count)",
        &[
            "system",
            "cost USD",
            "upload+process time s",
            "met 4h deadline",
        ],
    );
    for report in [&outcome.execution, &hadoop_report] {
        t.push(
            if report.name == "conductor" {
                "conductor"
            } else {
                "hadoop"
            },
            vec![
                report.total_cost,
                report.completion_hours * 3600.0,
                if report.met_deadline == Some(true) {
                    1.0
                } else {
                    0.0
                },
            ],
        );
    }
    t
}

/// Figure 11: cost and runtime when the user over-/under-estimates the number
/// of EC2 instances in the hybrid scenario (11 / 16 / 21 nodes).
pub fn fig11_hybrid_sweep() -> Table {
    let catalog = Catalog::aws_with_local_cluster(5);
    let engine = Engine::new(catalog);
    let spec = Workload::KMeans32Gb.spec();
    let uplink = uplink_16();
    let mut t = Table::new(
        "Figure 11: deviating from the optimal EC2 node count (hybrid)",
        &["nodes", "cost USD", "runtime s", "met 4h deadline"],
    );
    for nodes in [11usize, 16, 21] {
        let opts = DeploymentOptions {
            deadline_hours: Some(4.0),
            ..DeploymentOptions::new(format!("{nodes}-nodes"), uplink)
                .with_nodes("m1.large", nodes, 0.0)
                .with_nodes("local", 5, 0.0)
        };
        let report = engine
            .run(&spec, &opts, &LocalityScheduler)
            .expect("hybrid sweep run");
        t.push(
            format!("{nodes} EC2 nodes"),
            vec![
                report.total_cost,
                report.completion_hours * 3600.0,
                if report.met_deadline == Some(true) {
                    1.0
                } else {
                    0.0
                },
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 12: adaptation to mispredicted performance.
// ---------------------------------------------------------------------------

/// Figure 12: node allocation and job progress when the model mispredicts
/// per-node throughput (1.44 GB/h predicted vs 0.44 GB/h actual) and
/// Conductor re-plans after one hour.
pub fn fig12_adaptation() -> (Table, Table) {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let controller = AdaptiveController::new(catalog, pool).with_solve_options(solver_options());
    let report = controller
        .run_with_misprediction(
            &Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 7.0,
            },
            1.44,
            0.44,
            1.0,
        )
        .expect("adaptation run");

    // 12a: allocated instances per hour, initial plan vs deployed (spliced).
    let mut alloc = Table::new(
        "Figure 12a: allocated EC2 instances over time (initial vs updated plan)",
        &["hour", "initial plan", "updated (deployed) plan"],
    );
    let horizon = report
        .initial_plan
        .len()
        .max(report.execution.completion_hours.ceil() as usize);
    for hour in 0..horizon {
        let initial = report
            .initial_plan
            .intervals
            .get(hour)
            .map(|p| p.nodes.values().sum::<usize>())
            .unwrap_or(0);
        let deployed = conductor_mapreduce::cluster::nodes_at(
            &report.spliced_schedule,
            "m1.large",
            hour as f64 + 0.5,
        );
        alloc.push(format!("{hour}"), vec![initial as f64, deployed as f64]);
    }

    // 12b: completed tasks over time with and without adaptation.
    let mut progress = Table::new(
        "Figure 12b: completed tasks over time (total tasks, with vs without adaptation)",
        &["hour", "with adaptation", "without adaptation"],
    );
    let sample = |timeline: &[(f64, usize)], hour: f64| -> usize {
        timeline
            .iter()
            .filter(|(t, _)| *t <= hour)
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(0)
    };
    let end = report
        .without_adaptation
        .completion_hours
        .max(report.execution.completion_hours)
        .ceil() as usize;
    for hour in 0..=end {
        progress.push(
            format!("{hour}"),
            vec![
                sample(&report.execution.task_timeline, hour as f64) as f64,
                sample(&report.without_adaptation.task_timeline, hour as f64) as f64,
            ],
        );
    }
    (alloc, progress)
}

// ---------------------------------------------------------------------------
// Figures 13-14: spot markets.
// ---------------------------------------------------------------------------

/// Figure 13: summary statistics of the two spot-price traces (the paper
/// plots the raw histories; we report the features that matter — level,
/// range, and the presence/absence of diurnal structure).
pub fn fig13_spot_traces() -> Table {
    let hours = 24 * 35;
    let mut t = Table::new(
        "Figure 13: spot price traces (m1.large)",
        &[
            "trace",
            "mean $/h",
            "min $/h",
            "max $/h",
            "diurnal correlation",
        ],
    );
    for (label, trace) in [
        ("electricity-like", SpotTrace::electricity_like(42, hours)),
        ("aws-like", SpotTrace::aws_like(42, hours)),
    ] {
        let prices = trace.prices();
        let mean = prices.iter().sum::<f64>() / prices.len() as f64;
        let min = prices.iter().copied().fold(f64::INFINITY, f64::min);
        let max = prices.iter().copied().fold(0.0f64, f64::max);
        t.push(label, vec![mean, min, max, diurnal_correlation(&trace)]);
    }
    t
}

fn diurnal_correlation(trace: &SpotTrace) -> f64 {
    let n = trace.len() as f64;
    let mean = trace.prices().iter().sum::<f64>() / n;
    let (mut num, mut den_p, mut den_s) = (0.0, 0.0, 0.0);
    for (i, &p) in trace.prices().iter().enumerate() {
        let phase = (i % 24) as f64 / 24.0 * std::f64::consts::TAU;
        let s = (phase - std::f64::consts::FRAC_PI_2).sin();
        num += (p - mean) * s;
        den_p += (p - mean).powi(2);
        den_s += s * s;
    }
    (num / (den_p.sqrt() * den_s.sqrt())).abs()
}

/// Figure 14: average/maximum job cost and its standard deviation for regular
/// instances vs spot deployments with the -opt/-p0/-p5/-p13 predictors on
/// both traces.
pub fn fig14_spot_savings() -> Table {
    let hours = 24 * 35;
    let starts: Vec<usize> = (0..24 * 28).step_by(5).collect();
    let mut t = Table::new(
        "Figure 14: job cost with spot instances (USD)",
        &["scenario", "average cost", "maximum cost", "std dev"],
    );
    // Regular instances cost the same regardless of the trace.
    let regular_market = SpotMarket::new(SpotTrace::aws_like(42, hours), 0.34);
    let regular_sim = SpotDeploymentSimulator::new(regular_market, 80, 16, 12);
    let regular = regular_sim.run_scenario("regular", BidPredictor::Regular, &starts);
    t.push(
        "regular",
        vec![regular.average_cost, regular.max_cost, regular.std_dev],
    );

    for (prefix, trace) in [
        ("aws", SpotTrace::aws_like(42, hours)),
        ("el", SpotTrace::electricity_like(42, hours)),
    ] {
        let market = SpotMarket::new(trace, 0.34);
        let sim = SpotDeploymentSimulator::new(market, 80, 16, 12);
        for predictor in [
            BidPredictor::Optimal,
            BidPredictor::Current,
            BidPredictor::MaxOfPastDays { days: 5 },
            BidPredictor::MaxOfPastDays { days: 13 },
        ] {
            let label = format!("{prefix}-{}", predictor.label());
            let r = sim.run_scenario(&label, predictor, &starts);
            t.push(label, vec![r.average_cost, r.max_cost, r.std_dev]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 15: storage layer throughput.
// ---------------------------------------------------------------------------

/// Figure 15: sustained throughput of the storage options when copying 32 GB
/// of 64 MB files (Conductor's layer, HDFS, S3 via Hadoop, S3 via s3cmd).
pub fn fig15_storage_throughput() -> Table {
    let hdfs = HdfsModel::default();
    let conductor = ConductorStorageModel::default();
    let mut t = Table::new(
        "Figure 15: storage layer throughput, 32 GB in 64 MB files (MB/s)",
        &["storage option", "throughput MB/s", "copy time s"],
    );
    let block = 64.0;
    let rows: Vec<(&str, f64)> = vec![
        ("conductor", conductor.throughput_mbps(block)),
        ("hdfs", hdfs.write_throughput_mbps(StoragePath::Hdfs, block)),
        (
            "s3-via-hadoop",
            hdfs.write_throughput_mbps(StoragePath::S3ViaHadoop, block),
        ),
        (
            "s3-via-s3cmd",
            hdfs.write_throughput_mbps(StoragePath::S3ViaS3cmd, block),
        ),
    ];
    for (label, mbps) in rows {
        t.push(label, vec![mbps, 32.0 * 1024.0 / mbps]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 16: model generation and solving overhead.
// ---------------------------------------------------------------------------

/// Figure 16: model solving time for different input sizes and resource sets
/// (EC2-only, S3+EC2, EC2+S3+local).
pub fn fig16_solve_time() -> Table {
    let mut t = Table::new(
        "Figure 16: model solve time vs input size and available resources",
        &[
            "input GB",
            "EC2 only s",
            "S3+EC2 s",
            "EC2+S3+local s",
            "model vars (largest)",
        ],
    );
    let uplink = uplink_16();
    for input_gb in [32u32, 64, 128, 256] {
        // The paper's k-means workload (0.44 GB/h per node): the planner now
        // honors the spec's measured throughput, and fig16 measures the
        // node-heavy k-means models, not the fast-scan variant.
        let spec = Workload::KMeansScaled { input_gb }.spec();
        let upload_hours = spec.input_gb / uplink;
        let deadline = (upload_hours * 1.3).ceil().max(6.0);
        let mut row = Vec::new();
        let mut largest_vars = 0usize;
        for config in ["ec2-only", "s3+ec2", "ec2+s3+local"] {
            let (catalog, computes): (Catalog, Vec<&str>) = match config {
                "ec2-only" => (Catalog::aws_july_2011(), vec!["m1.large"]),
                "s3+ec2" => (Catalog::aws_july_2011(), vec!["m1.large"]),
                _ => (
                    Catalog::aws_with_local_cluster(5),
                    vec!["m1.large", "local"],
                ),
            };
            let mut pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&computes);
            if config == "ec2-only" {
                pool = pool.with_storage_only(&["EC2-disk"]);
            }
            let mut planner = Planner::new(pool).with_solve_options(SolveOptions {
                time_limit: Duration::from_secs(20),
                ..Default::default()
            });
            // Coarser intervals for very long horizons keep the comparison fair
            // while preserving the "bigger input -> bigger model" relationship.
            planner.interval_hours = if input_gb > 64 { 2.0 } else { 1.0 };
            let (_, report) = planner
                .plan(
                    &spec,
                    Goal::MinimizeCost {
                        deadline_hours: deadline,
                    },
                )
                .expect("fig16 planning");
            row.push(report.solve_time.as_secs_f64());
            largest_vars = largest_vars.max(report.model_vars);
        }
        row.push(largest_vars as f64);
        t.push(format!("{input_gb}"), row);
    }
    t
}

// ---------------------------------------------------------------------------
// Fleet: multi-job contention on the shared event kernel (beyond the paper).
// ---------------------------------------------------------------------------

/// The standard multi-job contention scenario: four tenants with mixed
/// deadlines arriving half-hourly, one shared electricity-like spot trace,
/// and a fleet-wide cap of 90 m1.large nodes. Shared by the
/// `fleet_contention` binary, the criterion bench and the integration
/// tests, so every consumer measures the same fleet.
pub fn fleet_contention_requests() -> Vec<FleetJobRequest> {
    vec![
        FleetJobRequest::new(
            "tenant-a",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
            0.0,
        ),
        FleetJobRequest::new(
            "tenant-b",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 7.0,
            },
            0.5,
        ),
        FleetJobRequest::new(
            "tenant-c",
            Workload::KMeansFastScan32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
            1.0,
        ),
        FleetJobRequest::new(
            "tenant-d",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 8.0,
            },
            1.5,
        ),
    ]
}

/// The service for [`fleet_contention_requests`]: fleet cap 90, shared
/// spot market seeded with `seed`.
pub fn fleet_contention_service(seed: u64) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 90);
    ConductorService::new(catalog, pool)
        .with_solve_options(solver_options())
        .with_spot_market(SpotMarket::new(
            SpotTrace::electricity_like(seed, 24 * 10),
            0.34,
        ))
}

/// Fleet contention table: per-tenant admission, peak allocation, bill and
/// deadline verdict when four jobs share one capacity pool and spot market.
pub fn fleet_contention() -> Table {
    let report = fleet_contention_service(17)
        .run(&fleet_contention_requests())
        .expect("fleet run");
    let mut t = Table::new(
        "Fleet: four tenants sharing one spot market and a 90-node cap",
        &[
            "arrival h",
            "peak nodes",
            "completion h",
            "bill USD",
            "met deadline",
        ],
    );
    for tenant in &report.tenants {
        let peak = tenant
            .plan
            .as_ref()
            .map(|p| p.peak_nodes("m1.large"))
            .unwrap_or(0);
        let (completion, bill, met) = match &tenant.execution {
            Some(exec) => (
                exec.completion_hours,
                exec.total_cost,
                if exec.met_deadline == Some(true) {
                    1.0
                } else {
                    0.0
                },
            ),
            None => (f64::NAN, 0.0, 0.0),
        };
        t.push(
            &tenant.tenant,
            vec![tenant.arrival_hours, peak as f64, completion, bill, met],
        );
    }
    t.push(
        "fleet",
        vec![
            0.0,
            0.0,
            report.makespan_hours,
            report.fleet_cost,
            report.deadlines_met as f64,
        ],
    );
    t
}

// ---------------------------------------------------------------------------
// Fleet churn: Poisson arrivals over simulated weeks (beyond the paper).
// ---------------------------------------------------------------------------

/// Deterministic Poisson churn workload: `jobs` arrivals whose inter-arrival
/// gaps are exponential with mean `mean_gap_hours` (a seeded Poisson
/// process), mixed input sizes (8 / 16 / 32 GB, weighted toward the small
/// end like real fleets) and per-size deadline slack. Everything derives
/// from `seed`, so the same call always produces the identical fleet.
pub fn churn_requests(seed: u64, jobs: usize, mean_gap_hours: f64) -> Vec<FleetJobRequest> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    let mut requests = Vec::with_capacity(jobs);
    for i in 0..jobs {
        // Exponential gap via inverse transform; `1 - u` keeps ln finite.
        let u: f64 = rng.gen_range(0.0..1.0);
        at += -mean_gap_hours * (1.0 - u).ln();
        let (spec, lo, hi) = match rng.gen_range(0u32..10) {
            0..=4 => (Workload::KMeansScaled { input_gb: 8 }.spec(), 4.0, 6.0),
            5..=7 => (Workload::KMeansScaled { input_gb: 16 }.spec(), 5.0, 8.0),
            _ => (Workload::KMeans32Gb.spec(), 6.0, 9.0),
        };
        let deadline = rng.gen_range(lo..hi);
        requests.push(FleetJobRequest::new(
            format!("tenant-{i:03}"),
            spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
            at,
        ));
    }
    requests
}

/// The service the churn scenarios run on: fleet-capped m1.large pool, an
/// AWS-like spot trace of `trace_hours` hours, and a fleet bid of 0.30 —
/// below the 0.34 on-demand ceiling, so the trace's spike hours (which the
/// electricity trace never has) become genuine revocation storms: every
/// session is terminated at the out-bid hour and new requests are refused
/// until the price comes back down. The admission planner sees the same
/// trace only as prices capped at on-demand, so a storm is a real
/// mid-flight surprise the monitor has to rescue.
pub fn churn_service(seed: u64, cap: usize, trace_hours: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool)
        .with_solve_options(solver_options())
        .with_spot_market(SpotMarket::new(
            SpotTrace::aws_like(seed, trace_hours),
            0.34,
        ))
        .with_spot_bid(0.30)
}

/// One big planner-free deployment (256 GB input → 4096 map tasks on 100
/// m1.large nodes over a fat uplink): the kernel-only hot path that the
/// dispatch index in `JobExecution::dispatch` optimizes. Shared by the
/// `fleet_churn` binary and the criterion `churn` bench so both report the
/// same scenario.
pub fn dispatch_hot_path_report() -> ExecutionReport {
    let catalog = Catalog::aws_july_2011();
    let engine = Engine::new(catalog);
    let spec = Workload::KMeansScaled { input_gb: 256 }.spec();
    let uplink = mbps_to_gb_per_hour(200.0);
    let opts = DeploymentOptions {
        max_hours: 2_000.0,
        ..DeploymentOptions::new("dispatch-hot-path", uplink).with_nodes("m1.large", 100, 0.0)
    };
    let scheduler = conductor_mapreduce::scheduler::PlanFollowingScheduler::cloud_only_defaults();
    engine
        .run(&spec, &opts, &scheduler)
        .expect("hot-path deployment")
}

/// The canonical churn scenario: `jobs` arrivals from one shared seed, the
/// storm-bearing service from [`churn_service`] with a 150-node cap, and a
/// trace long enough to outlive the last tenant. One definition, so the
/// `fleet_churn` binary, the criterion `churn` bench and the experiments
/// table all measure the *same* fleet and cannot drift apart.
pub fn churn_fixture(jobs: usize, mean_gap_hours: f64) -> (Vec<FleetJobRequest>, ConductorService) {
    let requests = churn_requests(20_260_729, jobs, mean_gap_hours);
    let horizon = requests.last().map(|r| r.arrival_hours).unwrap_or(0.0) + 200.0;
    let service = churn_service(17, 150, horizon.ceil() as usize);
    (requests, service)
}

/// The failure policy the faulted churn scenarios run under: a seeded
/// fault plan scaled to the fleet size (one task failure per ~10 jobs,
/// one node crash per ~16), the default retry ladder (2 retries, 0.5 h
/// base backoff doubling per attempt), the default admission gate, and
/// the spot circuit breaker with on-demand fallback. Everything derives
/// from `seed` and the workload shape, so the same call always produces
/// the identical policy.
pub fn churn_policy(seed: u64, jobs: usize, horizon_hours: f64) -> FailurePolicy {
    FailurePolicy {
        fault_plan: Some(FaultPlan::seeded(
            seed,
            horizon_hours,
            (jobs / 10).max(1),
            (jobs / 16).max(1),
        )),
        retry: Some(RetryPolicy::default()),
        failure_threshold: Some(FailureThreshold::default()),
        circuit_breaker: Some(CircuitBreakerConfig::default()),
    }
}

/// The canonical *faulted* churn scenario: the same requests and
/// storm-bearing service as [`churn_fixture`], plus the full
/// [`churn_policy`] failure policy — injected task failures and node
/// crashes on top of the trace's revocation storms, with retry/backoff,
/// the dead-letter queue, the admission gate and the spot circuit
/// breaker all armed.
pub fn faulted_churn_fixture(
    jobs: usize,
    mean_gap_hours: f64,
) -> (Vec<FleetJobRequest>, ConductorService) {
    let (requests, service) = churn_fixture(jobs, mean_gap_hours);
    let horizon = requests.last().map(|r| r.arrival_hours).unwrap_or(0.0) + 24.0;
    let policy = churn_policy(20_260_808, jobs, horizon);
    let service = service.with_failure_policy(policy);
    (requests, service)
}

/// Drives `requests` through the incremental `Fleet` session API as a real
/// open-world client: the clock is stepped to each arrival hour and the
/// job submitted *then* — online, not pre-listed. The batch
/// `ConductorService::run` path is pinned bitwise-identical to this
/// driver by `tests/fleet_api.rs`, so the churn bench measuring this
/// function measures the same fleet the batch figures report.
pub fn run_fleet_online(service: &ConductorService, requests: &[FleetJobRequest]) -> FleetReport {
    // Out-of-order arrivals would be silently clamped forward by the
    // mid-run submit (changing the fleet vs the batch path); this driver
    // exists to prove batch/incremental equivalence, so demand the order.
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_hours <= w[1].arrival_hours),
        "run_fleet_online requires requests sorted by arrival_hours"
    );
    run_fleet_session(service, requests).report()
}

/// [`run_fleet_online`], but returning the quiescent `Fleet` session
/// itself rather than just its report — so callers can inspect the full
/// event log (e.g. to feed `Fleet::replay`) or checkpoint the session.
pub fn run_fleet_session(
    service: &ConductorService,
    requests: &[FleetJobRequest],
) -> conductor_core::Fleet {
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_hours <= w[1].arrival_hours),
        "run_fleet_session requires requests sorted by arrival_hours"
    );
    let mut fleet = service.open().expect("fleet config is valid");
    for request in requests {
        fleet.step_until(request.arrival_hours);
        fleet
            .submit(request.clone())
            .expect("fixture requests are valid");
    }
    fleet.run_to_quiescence();
    fleet
}

/// [`run_fleet_session`] over a [`ShardedFleet`]: the same online driver
/// (step to each arrival, submit, drain) against `shards` partitions of
/// the service's pool, with the queue-rebalancer at `rebalance_period`
/// (or off when `None`). Shared by the shard-scaling bench rows, the
/// `CHURN_SHARDS` smoke and the determinism tests so they all drive the
/// identical fleet.
pub fn run_sharded_session(
    service: &ConductorService,
    shards: usize,
    rebalance_period: Option<f64>,
    requests: &[FleetJobRequest],
) -> ShardedFleet {
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_hours <= w[1].arrival_hours),
        "run_sharded_session requires requests sorted by arrival_hours"
    );
    let mut fleet = service
        .open_sharded(ShardedFleetConfig {
            shards,
            rebalance_period_hours: rebalance_period,
        })
        .expect("sharded fleet config is valid");
    for request in requests {
        fleet.step_until(request.arrival_hours);
        fleet
            .submit(request.clone())
            .expect("fixture requests are valid");
    }
    fleet.run_to_quiescence();
    fleet
}

/// Fleet churn summary table: `jobs` Poisson arrivals (mean gap
/// `mean_gap_hours`) on the canonical [`churn_fixture`] fleet, driven
/// through the incremental session API ([`run_fleet_online`] — arrivals
/// submitted as the clock reaches them). One row per outcome class plus
/// the fleet roll-up.
pub fn fleet_churn(jobs: usize, mean_gap_hours: f64) -> Table {
    let (requests, service) = churn_fixture(jobs, mean_gap_hours);
    let report = run_fleet_online(&service, &requests);
    let revocation_events: usize = report
        .tenants
        .iter()
        .map(|t| t.revoked_at_hours.len())
        .sum();
    let replans: usize = report
        .tenants
        .iter()
        .map(|t| t.replanned_at_hours.len())
        .sum();
    let mut t = Table::new(
        "Fleet churn: Poisson arrivals under a shared cap and a stormy spot trace",
        &["value"],
    );
    t.push("arrivals", vec![jobs as f64]);
    t.push("admitted", vec![report.jobs_admitted as f64]);
    t.push("completed", vec![report.jobs_completed as f64]);
    t.push("deadlines met", vec![report.deadlines_met as f64]);
    t.push("revocation hits", vec![revocation_events as f64]);
    t.push("monitor re-plans", vec![replans as f64]);
    t.push("retries", vec![report.retries as f64]);
    t.push("dead-lettered", vec![report.dead_lettered as f64]);
    t.push("breaker open h", vec![report.breaker_open_hours]);
    t.push("fleet cost USD", vec![report.fleet_cost]);
    t.push("makespan h", vec![report.makespan_hours]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Cheap experiments are exercised directly; the expensive planning-based
    // ones are covered by the integration tests and the figNN binaries.

    #[test]
    fn churn_requests_are_deterministic_and_poisson_shaped() {
        let a = churn_requests(7, 64, 1.0);
        let b = churn_requests(7, 64, 1.0);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.arrival_hours.to_bits(), y.arrival_hours.to_bits());
            assert_eq!(x.spec.input_gb, y.spec.input_gb);
        }
        // Arrivals are strictly increasing and average out near the mean gap.
        for w in a.windows(2) {
            assert!(w[1].arrival_hours > w[0].arrival_hours);
        }
        let mean_gap = a.last().unwrap().arrival_hours / (a.len() - 1) as f64;
        assert!(
            (0.5..2.0).contains(&mean_gap),
            "mean inter-arrival {mean_gap}"
        );
        // The size mix really is mixed.
        let sizes: std::collections::BTreeSet<u64> =
            a.iter().map(|r| r.spec.input_gb as u64).collect();
        assert!(sizes.len() >= 2, "sizes {sizes:?}");
        // A different seed moves the arrivals.
        let c = churn_requests(8, 64, 1.0);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.arrival_hours != y.arrival_hours));
    }

    #[test]
    fn fig01_divergence_grows_with_instance_size() {
        let t = fig01_ecu_divergence();
        let gap_xlarge = t.value("m1.xlarge", 3).unwrap();
        let gap_c1 = t.value("c1.xlarge", 3).unwrap();
        assert!(gap_xlarge > 0.0);
        assert!(gap_c1 > gap_xlarge);
    }

    #[test]
    fn fig07_shape_matches_paper() {
        let t = fig07_node_sweep();
        // 11 nodes miss the deadline; 21 nodes cost more than 16.
        assert_eq!(t.value("11 nodes", 2), Some(0.0));
        assert_eq!(t.value("16 nodes", 2), Some(1.0));
        assert!(t.value("21 nodes", 0).unwrap() > t.value("16 nodes", 0).unwrap());
    }

    #[test]
    fn fig13_traces_differ_in_diurnal_structure() {
        let t = fig13_spot_traces();
        assert!(t.value("electricity-like", 3).unwrap() > 0.5);
        assert!(t.value("aws-like", 3).unwrap() < 0.2);
    }

    #[test]
    fn fig14_spot_beats_regular() {
        let t = fig14_spot_savings();
        let regular = t.value("regular", 0).unwrap();
        for scenario in ["aws-p0", "el-p0", "aws-opt", "el-opt"] {
            assert!(
                t.value(scenario, 0).unwrap() < 0.7 * regular,
                "{scenario} not cheaper than regular"
            );
        }
    }

    #[test]
    fn fig15_ordering_matches_paper() {
        let t = fig15_storage_throughput();
        let hdfs = t.value("hdfs", 0).unwrap();
        let conductor = t.value("conductor", 0).unwrap();
        let s3cmd = t.value("s3-via-s3cmd", 0).unwrap();
        let s3hadoop = t.value("s3-via-hadoop", 0).unwrap();
        assert!(hdfs > conductor);
        assert!(
            conductor > 0.7 * hdfs,
            "overhead should be ~25%, got {conductor} vs {hdfs}"
        );
        assert!(s3cmd > s3hadoop);
    }
}
