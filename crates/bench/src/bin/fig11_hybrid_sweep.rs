//! Regenerates fig11_hybrid_sweep of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig11_hybrid_sweep`

fn main() {
    println!("{}", conductor_bench::experiments::fig11_hybrid_sweep());
}
