//! Regenerates fig07_node_sweep of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig07_node_sweep`

fn main() {
    println!("{}", conductor_bench::experiments::fig07_node_sweep());
}
