//! Regenerates Figure 12 (adaptation to mispredicted performance). Run with:
//! `cargo run --release -p conductor-bench --bin fig12_adaptation`

fn main() {
    let (allocation, progress) = conductor_bench::experiments::fig12_adaptation();
    println!("{allocation}");
    println!("{progress}");
}
