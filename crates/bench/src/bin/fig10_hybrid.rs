//! Regenerates fig10_hybrid of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig10_hybrid`

fn main() {
    println!("{}", conductor_bench::experiments::fig10_hybrid());
}
