//! Runs every experiment and prints all tables as markdown (the data behind
//! EXPERIMENTS.md). Run with:
//! `cargo run --release -p conductor-bench --bin all_experiments`

use conductor_bench::experiments as e;

fn main() {
    println!("{}", e::fig01_ecu_divergence().to_markdown());
    println!("{}", e::fig05_cloud_cost().to_markdown());
    println!("{}", e::fig06_cloud_runtime().to_markdown());
    println!("{}", e::fig07_node_sweep().to_markdown());
    println!("{}", e::fig08_storage_mix().to_markdown());
    println!("{}", e::fig09_storage_mix_scaled().to_markdown());
    println!("{}", e::fig10_hybrid().to_markdown());
    println!("{}", e::fig11_hybrid_sweep().to_markdown());
    let (alloc, progress) = e::fig12_adaptation();
    println!("{}", alloc.to_markdown());
    println!("{}", progress.to_markdown());
    println!("{}", e::fig13_spot_traces().to_markdown());
    println!("{}", e::fig14_spot_savings().to_markdown());
    println!("{}", e::fig15_storage_throughput().to_markdown());
    println!("{}", e::fig16_solve_time().to_markdown());
    println!("{}", e::fleet_contention().to_markdown());
    println!("{}", e::fleet_churn(60, 1.0).to_markdown());
}
