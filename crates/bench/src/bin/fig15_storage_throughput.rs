//! Regenerates fig15_storage_throughput of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig15_storage_throughput`

fn main() {
    println!(
        "{}",
        conductor_bench::experiments::fig15_storage_throughput()
    );
}
