//! Regenerates fig01_ecu_divergence of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig01_ecu_divergence`

fn main() {
    println!("{}", conductor_bench::experiments::fig01_ecu_divergence());
}
