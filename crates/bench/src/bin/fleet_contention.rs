//! Runs the multi-job fleet contention scenario: four tenants with
//! staggered arrivals sharing one spot market and a fleet-wide node cap.
//! Run with:
//! `cargo run --release -p conductor-bench --bin fleet_contention`

fn main() {
    println!("{}", conductor_bench::experiments::fleet_contention());
}
