//! Regenerates fig06_cloud_runtime of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig06_cloud_runtime`

fn main() {
    println!("{}", conductor_bench::experiments::fig06_cloud_runtime());
}
