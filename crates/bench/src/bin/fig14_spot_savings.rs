//! Regenerates fig14_spot_savings of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig14_spot_savings`

fn main() {
    println!("{}", conductor_bench::experiments::fig14_spot_savings());
}
