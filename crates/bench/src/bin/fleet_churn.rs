//! Fleet churn at scale: N Poisson arrivals on the shared event kernel,
//! with revocation storms from an AWS-like spot trace along the way.
//!
//! Arrivals are driven **online** through the incremental `Fleet` session
//! API — the clock is stepped to each arrival hour and the job submitted
//! then, exactly how an open-world client uses Conductor (the batch
//! `ConductorService::run` path is pinned bitwise-identical by
//! `tests/fleet_api.rs`).
//!
//! This is the canonical fleet-scale wall-clock metric (the number to
//! watch as the kernel hot path evolves) **and** an invariant check: it
//! asserts that every admitted job reaches a terminal state, that the
//! per-tenant bills sum to the fleet bill, and — when
//! `CHURN_VERIFY_DETERMINISM=1` — that a second run reproduces the first
//! bit for bit. With `CHURN_FAULTS=1` the fleet runs under the full
//! failure policy (seeded task failures and node crashes, retry/backoff,
//! dead-letter queue, admission gate, spot circuit breaker) and the
//! invariants adapt: injected faults *may* abort jobs, but every tenant
//! must still end terminal and the bills must still sum. CI runs a small
//! fleet as a smoke test in both modes; run it with an argument for the
//! full scenario:
//!
//! With `CHURN_CACHE=1` the binary additionally replays the unfaulted
//! fleet with the admission plan cache off and on and reports admission
//! decisions/sec for both; `CHURN_CACHE_BAR=<x>` also asserts the cached
//! path clears `x`× the cold throughput (the CI regression gate). With
//! `CHURN_REPLAY=1` it re-drives the session's own event log through
//! `Fleet::replay` and asserts the reconstruction is bitwise identical
//! (events, bills, makespan) — the event-log-as-source-of-truth gate.
//! With `CHURN_SHARDS=<n>` it additionally drains the same unfaulted
//! fixture through an n-shard `ShardedFleet` (hash routing, no
//! rebalancer) and asserts the sharded run reaches quiescence with every
//! admitted job terminal and a second sharded run bitwise identical.
//!
//! ```sh
//! cargo run --release -p conductor-bench --bin fleet_churn        # 200 jobs
//! cargo run --release -p conductor-bench --bin fleet_churn -- 40  # smaller
//! CHURN_FAULTS=1 cargo run --release -p conductor-bench --bin fleet_churn -- 40
//! CHURN_CACHE_BAR=2 cargo run --release -p conductor-bench --bin fleet_churn -- 120
//! ```

use conductor_bench::experiments::{
    churn_fixture, dispatch_hot_path_report, faulted_churn_fixture, run_fleet_online,
    run_fleet_session, run_sharded_session,
};
use conductor_bench::solver_bench::admission_benchmark;
use conductor_core::FleetReport;
use std::time::Instant;

fn run(jobs: usize, faults: bool) -> (FleetReport, std::time::Duration) {
    let (requests, service) = if faults {
        faulted_churn_fixture(jobs, 1.0)
    } else {
        churn_fixture(jobs, 1.0)
    };
    let start = Instant::now();
    let report = run_fleet_online(&service, &requests);
    (report, start.elapsed())
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let faults = std::env::var("CHURN_FAULTS").as_deref() == Ok("1");
    let (report, elapsed) = run(jobs, faults);

    let revocation_hits: usize = report
        .tenants
        .iter()
        .map(|t| t.revoked_at_hours.len())
        .sum();
    let replans: usize = report
        .tenants
        .iter()
        .map(|t| t.replanned_at_hours.len())
        .sum();
    let failed: usize = report
        .tenants
        .iter()
        .filter(|t| t.failure.is_some())
        .count();
    println!(
        "=== fleet churn: {jobs} Poisson arrivals{} ===",
        if faults { " + injected faults" } else { "" }
    );
    println!(
        "admitted {} / completed {} / failed {failed} / deadlines met {}",
        report.jobs_admitted, report.jobs_completed, report.deadlines_met
    );
    println!("revocation hits {revocation_hits} / monitor re-plans {replans}");
    if faults {
        println!(
            "retries {} / dead-lettered {} / breaker open {:.1} h",
            report.retries, report.dead_lettered, report.breaker_open_hours
        );
    }
    println!(
        "fleet cost ${:.2}, makespan {:.1} h",
        report.fleet_cost, report.makespan_hours
    );
    println!("wall clock: {:.3} s", elapsed.as_secs_f64());

    // ---- invariants the CI smoke step relies on ------------------------
    // Every admitted job reached a terminal state (report or explicit
    // failure), and completions tally.
    for t in &report.tenants {
        if t.admitted {
            assert!(
                t.execution.is_some(),
                "{}: admitted but no execution report",
                t.tenant
            );
        } else {
            assert!(
                t.rejection.is_some(),
                "{}: neither admitted nor rejected",
                t.tenant
            );
        }
    }
    assert_eq!(
        report.jobs_completed + failed,
        report.jobs_admitted,
        "admitted jobs unaccounted for"
    );
    if faults {
        // Faults abort jobs by design; the policy's job is to keep the
        // chains terminal. Every dead letter is the end of an exhausted
        // retry chain, never a first attempt (the default policy grants
        // at least one retry).
        for dl in &report.tenants {
            if dl.failure.is_some() {
                assert!(dl.admitted, "{}: failed but never admitted", dl.tenant);
            }
        }
    } else {
        assert_eq!(
            report.jobs_completed,
            report.jobs_admitted,
            "a job failed mid-run: {:?}",
            report
                .tenants
                .iter()
                .filter_map(|t| t.failure.as_ref())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.retries, 0, "retries without a policy");
        assert_eq!(report.dead_lettered, 0, "dead letters without a policy");
    }
    // Per-tenant bills sum to the fleet bill, and the category roll-up is
    // consistent with the total.
    let tenant_sum: f64 = report
        .tenants
        .iter()
        .filter_map(|t| t.execution.as_ref())
        .map(|e| e.total_cost)
        .sum();
    assert!(
        (report.fleet_cost - tenant_sum).abs() < 1e-6 * report.fleet_cost.max(1.0),
        "fleet {} vs tenant sum {}",
        report.fleet_cost,
        tenant_sum
    );
    assert!(
        (report.fleet_breakdown.total() - report.fleet_cost).abs()
            < 1e-6 * report.fleet_cost.max(1.0),
        "breakdown {} vs fleet {}",
        report.fleet_breakdown.total(),
        report.fleet_cost
    );

    if std::env::var("CHURN_VERIFY_DETERMINISM").as_deref() == Ok("1") {
        let (again, _) = run(jobs, faults);
        assert_eq!(report.fleet_cost.to_bits(), again.fleet_cost.to_bits());
        assert_eq!(
            report.makespan_hours.to_bits(),
            again.makespan_hours.to_bits()
        );
        assert_eq!(report.retries, again.retries);
        assert_eq!(report.dead_lettered, again.dead_lettered);
        assert_eq!(
            report.breaker_open_hours.to_bits(),
            again.breaker_open_hours.to_bits()
        );
        for (a, b) in report.tenants.iter().zip(&again.tenants) {
            assert_eq!(a.revoked_at_hours, b.revoked_at_hours, "{}", a.tenant);
            assert_eq!(a.replanned_at_hours, b.replanned_at_hours, "{}", a.tenant);
        }
        println!("determinism: second run identical (bills, makespan, storms)");
    }

    // ---- event-log replay ----------------------------------------------
    // Opt-in (`CHURN_REPLAY=1`): reconstruct the same fleet from its own
    // event log (`Fleet::replay` re-drives every submission from the
    // `Submitted` payloads and verifies each regenerated event against
    // the log) and assert the reconstruction is exact — the log is a
    // sufficient record of the session, proven at churn scale.
    if std::env::var("CHURN_REPLAY").as_deref() == Ok("1") {
        let (requests, service) = if faults {
            faulted_churn_fixture(jobs, 1.0)
        } else {
            churn_fixture(jobs, 1.0)
        };
        let session = run_fleet_session(&service, &requests);
        let start = Instant::now();
        let mut replayed = service
            .replay(session.events())
            .expect("event log replays cleanly");
        replayed.run_to_quiescence();
        assert_eq!(
            replayed.events(),
            session.events(),
            "replayed event log diverged"
        );
        let again = replayed.report();
        assert_eq!(report.fleet_cost.to_bits(), again.fleet_cost.to_bits());
        assert_eq!(
            report.makespan_hours.to_bits(),
            again.makespan_hours.to_bits()
        );
        println!(
            "replay: {} events reconstructed the session bitwise in {:.3} s",
            session.events().len(),
            start.elapsed().as_secs_f64()
        );
    }

    // ---- sharded runtime -----------------------------------------------
    // Opt-in (`CHURN_SHARDS=<n>`): drain the same unfaulted fixture
    // through an n-shard `ShardedFleet` (hash routing, no rebalancer)
    // on the parallel stepping driver. The smoke gate: the sharded run
    // reaches quiescence, every admitted job is terminal, and a second
    // sharded run reproduces the first bit for bit — partitioning plus
    // scoped threads must not cost determinism.
    if let Some(shards) = std::env::var("CHURN_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        let (requests, service) = churn_fixture(jobs, 1.0);
        let start = Instant::now();
        let fleet = run_sharded_session(&service, shards, None, &requests);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(fleet.pending_events(), 0, "sharded run did not drain");
        let sharded = fleet.report();
        assert_eq!(
            sharded.jobs_completed, sharded.jobs_admitted,
            "a sharded job failed mid-run"
        );
        let again = run_sharded_session(&service, shards, None, &requests);
        assert_eq!(
            fleet.fleet_bill().to_bits(),
            again.fleet_bill().to_bits(),
            "sharded bills diverged between identical runs"
        );
        assert_eq!(
            fleet.merged_events(),
            again.merged_events(),
            "sharded event streams diverged between identical runs"
        );
        println!(
            "sharded runtime ({shards} shards): {} admitted / {} completed in {:.3} s, \
             bill ${:.2}, second run identical",
            sharded.jobs_admitted,
            sharded.jobs_completed,
            wall,
            fleet.fleet_bill(),
        );
    }

    // ---- admission plan cache throughput --------------------------------
    // Opt-in (`CHURN_CACHE=1`, or `CHURN_CACHE_BAR=<x>` to also assert):
    // replay the same unfaulted fleet with the admission plan cache off
    // and on, reporting admission decisions per second for both paths.
    // With a bar set, the cached path must beat the cold path's
    // throughput by at least that factor — the CI regression gate for
    // the admission fast path.
    let cache_bar: Option<f64> = std::env::var("CHURN_CACHE_BAR")
        .ok()
        .and_then(|s| s.parse().ok());
    if cache_bar.is_some() || std::env::var("CHURN_CACHE").as_deref() == Ok("1") {
        let row = admission_benchmark(jobs);
        println!(
            "admission throughput: cold {:.1}/s ({:.3} s), plan cache {:.1}/s ({:.3} s) = {:.2}x, {} hits / {} misses",
            row.cold_admissions_per_sec,
            row.cold_wall_s,
            row.cached_admissions_per_sec,
            row.cached_wall_s,
            row.wall_speedup,
            row.plan_cache_hits,
            row.plan_cache_misses,
        );
        if let Some(bar) = cache_bar {
            assert!(
                row.wall_speedup >= bar,
                "plan cache regressed: {:.2}x end-to-end vs the {bar:.1}x bar",
                row.wall_speedup
            );
            println!(
                "admission cache bar ok: {:.2}x >= {bar:.1}x",
                row.wall_speedup
            );
        }
    }

    // ---- kernel hot path ------------------------------------------------
    // The churn fleet above is planner-dominated (its jobs are small); the
    // dispatch cost is O(index lookups) instead of O(tasks · idle nodes)
    // per wakeup, which shows up once a single execution is large. Time
    // one big planner-free deployment so the kernel term is visible on its
    // own (this is the number the dispatch index halves).
    let start = Instant::now();
    let big = dispatch_hot_path_report();
    println!(
        "dispatch hot path (256 GB, 100 nodes, {} tasks, no planner): {:.3} s",
        big.total_tasks,
        start.elapsed().as_secs_f64()
    );
    assert_eq!(
        big.task_timeline.last().map(|&(_, c)| c),
        Some(big.total_tasks)
    );
    println!("invariants ok");
}
