//! Regenerates fig05_cloud_cost of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig05_cloud_cost`

fn main() {
    println!("{}", conductor_bench::experiments::fig05_cloud_cost());
}
