//! Regenerates fig16_solve_time of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig16_solve_time`

fn main() {
    println!("{}", conductor_bench::experiments::fig16_solve_time());
}
