//! Regenerates fig16_solve_time of the paper, then runs the solver
//! before/after comparison and writes `BENCH_solver.json` (committed at the
//! repo root so the perf trajectory is tracked across PRs). Run with:
//! `cargo run --release -p conductor-bench --bin fig16_solve_time`

use conductor_bench::solver_bench;

fn main() {
    println!("{}", conductor_bench::experiments::fig16_solve_time());

    println!("\nSolver before/after comparison (seed vs flat-tableau vs warm-started):\n");
    let report = solver_bench::solver_benchmark();
    print!("{}", solver_bench::render_report(&report));

    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    let path = "BENCH_solver.json";
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_solver.json");
    println!("\nwrote {path}");
}
