//! Regenerates fig13_spot_traces of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig13_spot_traces`

fn main() {
    println!("{}", conductor_bench::experiments::fig13_spot_traces());
}
