use conductor_cloud::Catalog;
use conductor_core::{Goal, Planner, ResourcePool};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::time::{Duration, Instant};
fn main() {
    let pool =
        ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0).with_compute_only(&["m1.large"]);
    let planner = Planner::new(pool).with_solve_options(SolveOptions {
        time_limit: Duration::from_secs(120),
        ..Default::default()
    });
    let t = Instant::now();
    let (plan, report) = planner
        .plan(
            &Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
        )
        .unwrap();
    println!(
        "wall {:?} solve {:?} nodes {} iters {} vars {} cons {} cost {:.2} peak {} optimal {}",
        t.elapsed(),
        report.solve_time,
        report.nodes_explored,
        report.simplex_iterations,
        report.model_vars,
        report.model_constraints,
        plan.expected_cost,
        plan.peak_nodes("m1.large"),
        plan.proven_optimal
    );
}
