//! Regenerates fig09_storage_mix_scaled of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig09_storage_mix_scaled`

fn main() {
    println!(
        "{}",
        conductor_bench::experiments::fig09_storage_mix_scaled()
    );
}
