//! Regenerates fig08_storage_mix of the paper. Run with:
//! `cargo run --release -p conductor-bench --bin fig08_storage_mix`

fn main() {
    println!("{}", conductor_bench::experiments::fig08_storage_mix());
}
