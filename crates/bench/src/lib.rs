//! # conductor-bench
//!
//! The experiment harness of the Conductor reproduction: one function per
//! table/figure of the paper's evaluation (§6), each returning a printable
//! [`table::Table`] with the same rows/series the paper reports. The
//! `figNN_*` binaries in `src/bin/` are thin wrappers that run one experiment
//! and print its table; the Criterion benches in `benches/` measure the
//! planner/solver and storage-layer overheads (Figures 15 and 16) with
//! statistical rigor.

pub mod experiments;
pub mod solver_bench;
pub mod table;

pub use solver_bench::{solver_benchmark, SolverBenchReport, SolverBenchRow};
pub use table::Table;
