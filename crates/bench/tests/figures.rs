//! Integration tests over the experiment harness: the regenerated figures
//! must show the same qualitative shape the paper reports.

use conductor_bench::experiments;

/// §6.2 (Figures 5/6): Conductor's cost is close to the cheapest manual
/// alternative, and the Hadoop-S3 option costs roughly twice as much.
#[test]
fn conductor_is_near_cheapest_and_s3_is_roughly_double() {
    let reports = experiments::cloud_only_reports();
    let get = |name: &str| reports.iter().find(|r| r.name == name).unwrap();
    let conductor = get("conductor");
    let cheapest_manual = reports
        .iter()
        .filter(|r| r.name != "conductor")
        .map(|r| r.total_cost)
        .fold(f64::INFINITY, f64::min);
    assert!(
        conductor.total_cost <= cheapest_manual * 1.15,
        "conductor {} vs cheapest manual {}",
        conductor.total_cost,
        cheapest_manual
    );
    let s3 = get("hadoop-s3");
    assert!(
        s3.total_cost > 1.6 * conductor.total_cost,
        "hadoop-s3 {} vs conductor {}",
        s3.total_cost,
        conductor.total_cost
    );
    // Every option that meets the deadline stays within 6 hours.
    assert_eq!(conductor.met_deadline, Some(true));
}

/// Figure 8: the storage-mix sweep reproduces the paper's curve — cost
/// falls from all-S3 to an interior optimum and then rises steeply, with
/// **all-EC2 the most expensive mix**. The endpoint ordering comes from two
/// model-fidelity fixes: the planner honors the workload's measured
/// throughput (the fast-scan job no longer pays k-means compute prices that
/// drowned the storage effect), and instance-disk residency is charged its
/// replicated share of the hosting instances (idle holding is never free).
#[test]
fn fig08_storage_mix_curve_matches_paper_ordering() {
    let t = experiments::fig08_storage_mix();
    let costs: Vec<f64> = (0..=10)
        .map(|i| t.value(&format!("{:.1}", i as f64 / 10.0), 0).unwrap())
        .collect();
    let all_s3 = costs[0];
    let all_ec2 = costs[10];
    let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = costs.iter().copied().fold(0.0f64, f64::max);
    assert!(
        costs.iter().all(|&c| c > 0.0),
        "non-positive cost in sweep: {costs:?}"
    );
    // The unconstrained-optimal interior is never worse than a forced endpoint.
    assert!(min <= all_s3 + 1e-9 && min <= all_ec2 + 1e-9);
    // The paper's headline ordering: all-EC2 is the most expensive point of
    // the whole sweep, clearly above all-S3 (not within solver-gap noise).
    assert!(
        (all_ec2 - max).abs() < 1e-9,
        "all-EC2 ({all_ec2}) is not the maximum of the sweep: {costs:?}"
    );
    assert!(
        all_ec2 > 1.1 * all_s3,
        "all-EC2 ({all_ec2}) should be decisively above all-S3 ({all_s3}): {costs:?}"
    );
    // And the interior minimum genuinely beats the all-S3 endpoint (the
    // mixed-storage win the paper demonstrates).
    assert!(
        min < all_s3 - 1e-9,
        "no interior improvement over all-S3: {costs:?}"
    );
}

/// Figure 16 smoke for the solver engines: the revised sparse engine and the
/// dense tableau must plan the fig16 workload to identical costs (they solve
/// the same relaxations to the same optima; only the linear algebra
/// differs).
#[test]
fn fig16_revised_and_dense_plan_costs_are_identical() {
    use conductor_cloud::{catalog::mbps_to_gb_per_hour, Catalog};
    use conductor_core::{Goal, Planner, ResourcePool};
    use conductor_lp::{Engine, SolveOptions};
    use conductor_mapreduce::Workload;

    let spec = Workload::KMeansScaled { input_gb: 32 }.spec();
    let upload_hours = spec.input_gb / mbps_to_gb_per_hour(16.0);
    let deadline = (upload_hours * 1.3).ceil().max(6.0);
    let plan_cost = |engine: Engine| {
        let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
            .with_compute_only(&["m1.large"]);
        let planner = Planner::new(pool).with_solve_options(SolveOptions {
            engine,
            time_limit: std::time::Duration::from_secs(60),
            ..Default::default()
        });
        let (plan, _) = planner
            .plan(
                &spec,
                Goal::MinimizeCost {
                    deadline_hours: deadline,
                },
            )
            .expect("fig16 smoke plan");
        plan.expected_cost
    };
    let dense = plan_cost(Engine::DenseTableau);
    let revised = plan_cost(Engine::RevisedSparse);
    assert!(
        (dense - revised).abs() < 1e-9,
        "dense {dense} vs revised {revised}"
    );
}

/// Figure 16: the model and its solve time grow with the input size, and
/// adding more services to the model does not shrink it.
#[test]
fn fig16_solve_time_grows_with_input() {
    let t = experiments::fig16_solve_time();
    let small_vars = t.value("32", 3).unwrap();
    let large_vars = t.value("256", 3).unwrap();
    assert!(large_vars > small_vars, "model should grow with input size");
    for row in ["32", "64", "128", "256"] {
        for col in 0..3 {
            assert!(t.value(row, col).unwrap() >= 0.0);
        }
    }
}
