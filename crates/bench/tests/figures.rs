//! Integration tests over the experiment harness: the regenerated figures
//! must show the same qualitative shape the paper reports.

use conductor_bench::experiments;

/// §6.2 (Figures 5/6): Conductor's cost is close to the cheapest manual
/// alternative, and the Hadoop-S3 option costs roughly twice as much.
#[test]
fn conductor_is_near_cheapest_and_s3_is_roughly_double() {
    let reports = experiments::cloud_only_reports();
    let get = |name: &str| reports.iter().find(|r| r.name == name).unwrap();
    let conductor = get("conductor");
    let cheapest_manual = reports
        .iter()
        .filter(|r| r.name != "conductor")
        .map(|r| r.total_cost)
        .fold(f64::INFINITY, f64::min);
    assert!(
        conductor.total_cost <= cheapest_manual * 1.15,
        "conductor {} vs cheapest manual {}",
        conductor.total_cost,
        cheapest_manual
    );
    let s3 = get("hadoop-s3");
    assert!(
        s3.total_cost > 1.6 * conductor.total_cost,
        "hadoop-s3 {} vs conductor {}",
        s3.total_cost,
        conductor.total_cost
    );
    // Every option that meets the deadline stays within 6 hours.
    assert_eq!(conductor.met_deadline, Some(true));
}

/// Figure 8: the storage-mix sweep produces a well-formed cost curve whose
/// optimum is never beaten by either forced endpoint.
///
/// Note: the paper's figure shows the all-EC2 endpoint as the most expensive
/// point. Our model prices the two endpoints within a few percent of each
/// other at this uplink because the fast-scan workload processes data as it
/// trickles in, so the instance holding the EC2 disks is doing useful work
/// anyway (the §4.6 disk/compute coupling is satisfied for free). Until the
/// billing model charges idle disk-holding more faithfully (see ROADMAP),
/// asserting a strict endpoint ordering would encode solver noise, not the
/// model.
#[test]
fn fig08_storage_mix_curve_is_well_formed() {
    let t = experiments::fig08_storage_mix();
    let costs: Vec<f64> = (0..=10)
        .map(|i| t.value(&format!("{:.1}", i as f64 / 10.0), 0).unwrap())
        .collect();
    let all_s3 = costs[0];
    let all_ec2 = costs[10];
    let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = costs.iter().copied().fold(0.0f64, f64::max);
    assert!(
        costs.iter().all(|&c| c > 0.0),
        "non-positive cost in sweep: {costs:?}"
    );
    // The unconstrained-optimal interior is never worse than a forced endpoint.
    assert!(min <= all_s3 + 1e-9 && min <= all_ec2 + 1e-9);
    // The endpoints agree within the solver gap band (few percent), i.e. the
    // sweep is meaningful rather than wildly noisy.
    assert!(max <= min * 1.10, "sweep spread too large: {costs:?}");
}

/// Figure 16: the model and its solve time grow with the input size, and
/// adding more services to the model does not shrink it.
#[test]
fn fig16_solve_time_grows_with_input() {
    let t = experiments::fig16_solve_time();
    let small_vars = t.value("32", 3).unwrap();
    let large_vars = t.value("256", 3).unwrap();
    assert!(large_vars > small_vars, "model should grow with input size");
    for row in ["32", "64", "128", "256"] {
        for col in 0..3 {
            assert!(t.value(row, col).unwrap() >= 0.0);
        }
    }
}
