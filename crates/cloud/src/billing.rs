//! Usage metering and cost accounting.
//!
//! The paper instruments its prototype to "account for all operations over
//! cloud resources" instead of relying on Amazon's coarse billing (§6.1).
//! [`BillingAccount`] plays that role here: deployments record instance
//! rentals, storage residency, requests and transfers, and the account
//! reports totals and the per-category breakdown plotted in Figure 5
//! (network transfer / computation-EC2 / storage-S3 / storage-EC2).

use crate::catalog::{InstanceType, StorageKind, StorageService, TransferPricing};
use crate::{Gigabytes, Hours};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cost categories matching the stacked bars of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CostCategory {
    /// Wide-area transfer between the customer and the cloud.
    NetworkTransfer,
    /// EC2 (or other cloud) instance-hours.
    Computation,
    /// S3-style object storage (GB-hours plus requests).
    StorageS3,
    /// Storage on EC2 instance disks (free per-GB, but counted separately so
    /// the breakdown matches the paper's figure).
    StorageEc2,
    /// Customer-owned local resources (always zero cost, tracked for
    /// completeness in hybrid deployments).
    Local,
}

/// Direction of a wide-area transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferDirection {
    /// Customer → cloud (job input upload).
    In,
    /// Cloud → customer (result download).
    Out,
    /// Between two services of the same provider (free on AWS in-region).
    IntraCloud,
}

/// A per-category cost breakdown.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    categories: BTreeMap<CostCategory, f64>,
}

impl CostBreakdown {
    /// Cost recorded under `category` (zero if nothing was recorded).
    pub fn get(&self, category: CostCategory) -> f64 {
        self.categories.get(&category).copied().unwrap_or(0.0)
    }

    /// Sum over all categories.
    pub fn total(&self) -> f64 {
        self.categories.values().sum()
    }

    /// Iterates `(category, cost)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (CostCategory, f64)> + '_ {
        self.categories.iter().map(|(c, v)| (*c, *v))
    }

    /// Merges another breakdown into this one, category by category. Used
    /// by fleet-level accounting to roll per-tenant bills up into one
    /// provider-side bill.
    pub fn absorb(&mut self, other: &CostBreakdown) {
        for (category, cost) in other.iter() {
            self.add(category, cost);
        }
    }

    fn add(&mut self, category: CostCategory, amount: f64) {
        *self.categories.entry(category).or_insert(0.0) += amount;
    }
}

/// An open instance rental session.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RentalSession {
    instance_name: String,
    hourly_price: f64,
    is_local: bool,
    started_at: Hours,
    /// Price actually paid per hour (differs from `hourly_price` for spot
    /// instances).
    effective_hourly_price: f64,
}

/// Meters all chargeable activity of one deployment.
///
/// Instance-hours are **rounded up per allocation session**, reproducing the
/// EC2 behaviour that drives the "instances are billed until the next full
/// hour anyway, so use them for storage" effect discussed under Figure 8.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BillingAccount {
    transfer: Option<TransferPricing>,
    open_sessions: BTreeMap<u64, RentalSession>,
    next_session: u64,
    breakdown: CostBreakdown,
    /// Total instance-hours billed (after round-up), per instance type.
    instance_hours: BTreeMap<String, f64>,
    /// Total GB uploaded from the customer.
    pub uploaded_gb: Gigabytes,
    /// Total GB downloaded to the customer.
    pub downloaded_gb: Gigabytes,
}

impl BillingAccount {
    /// Creates an account using the given transfer pricing.
    pub fn new(transfer: TransferPricing) -> Self {
        Self {
            transfer: Some(transfer),
            ..Default::default()
        }
    }

    /// Starts renting one instance of `itype` at simulation time `now`
    /// (hours). Returns a session id to be passed to [`Self::stop_instance`].
    pub fn start_instance(&mut self, itype: &InstanceType, now: Hours) -> u64 {
        self.start_instance_at_price(itype, now, itype.hourly_price)
    }

    /// Starts renting a spot instance at the given effective hourly price.
    pub fn start_instance_at_price(
        &mut self,
        itype: &InstanceType,
        now: Hours,
        effective_hourly_price: f64,
    ) -> u64 {
        let id = self.next_session;
        self.next_session += 1;
        self.open_sessions.insert(
            id,
            RentalSession {
                instance_name: itype.name.clone(),
                hourly_price: itype.hourly_price,
                is_local: itype.is_local(),
                started_at: now,
                effective_hourly_price,
            },
        );
        id
    }

    /// Stops a rental session at time `now`, charging for the elapsed time
    /// rounded **up** to whole hours (minimum one hour), like EC2.
    ///
    /// Returns the amount charged. Unknown session ids charge nothing.
    pub fn stop_instance(&mut self, session: u64, now: Hours) -> f64 {
        let Some(s) = self.open_sessions.remove(&session) else {
            return 0.0;
        };
        let elapsed = (now - s.started_at).max(0.0);
        let billed_hours = elapsed.ceil().max(1.0);
        let cost = if s.is_local {
            0.0
        } else {
            billed_hours * s.effective_hourly_price
        };
        let category = if s.is_local {
            CostCategory::Local
        } else {
            CostCategory::Computation
        };
        self.breakdown.add(category, cost);
        *self.instance_hours.entry(s.instance_name).or_insert(0.0) += billed_hours;
        cost
    }

    /// Stops a rental session that the *provider* terminated (a spot
    /// instance out-bid by the market): completed whole hours are charged,
    /// but the partial hour in which the termination happened is free —
    /// EC2's out-of-bid rule, mirroring
    /// [`crate::SpotMarket::run_instance`]. Contrast with
    /// [`Self::stop_instance`], which rounds *up* (the customer chose to
    /// stop and pays to the end of the started hour).
    ///
    /// Returns the amount charged. Unknown session ids charge nothing.
    pub fn stop_instance_revoked(&mut self, session: u64, now: Hours) -> f64 {
        let Some(s) = self.open_sessions.remove(&session) else {
            return 0.0;
        };
        let elapsed = (now - s.started_at).max(0.0);
        // Nudge before flooring: a session spanning whole hours between two
        // fractional fleet instants can compute to 2.999…96, and a fully
        // completed hour is chargeable (same float-summation tolerance the
        // engine's trace-hour lookup applies).
        let billed_hours = (elapsed + 1e-9).floor();
        let cost = if s.is_local {
            0.0
        } else {
            billed_hours * s.effective_hourly_price
        };
        let category = if s.is_local {
            CostCategory::Local
        } else {
            CostCategory::Computation
        };
        self.breakdown.add(category, cost);
        *self.instance_hours.entry(s.instance_name).or_insert(0.0) += billed_hours;
        cost
    }

    /// Number of rental sessions still open.
    pub fn open_sessions(&self) -> usize {
        self.open_sessions.len()
    }

    /// What the open rental sessions *would* charge if the customer
    /// stopped them all at time `now`: elapsed time rounded up to whole
    /// hours (minimum one), exactly like [`Self::stop_instance`] /
    /// [`Self::close_all`]. Nothing is recorded — this is the live-bill
    /// preview a fleet driver adds to [`Self::total_cost`], so that an
    /// abort at the same instant settles at the same figure the last
    /// status query quoted.
    pub fn open_accrual(&self, now: Hours) -> f64 {
        self.open_sessions
            .values()
            .filter(|s| !s.is_local)
            .map(|s| (now - s.started_at).max(0.0).ceil().max(1.0) * s.effective_hourly_price)
            .sum()
    }

    /// Records `gb` gigabytes resident on `service` for `hours` hours, plus
    /// optional PUT/GET request counts against that service.
    pub fn record_storage(
        &mut self,
        service: &StorageService,
        gb: Gigabytes,
        hours: Hours,
        puts: u64,
        gets: u64,
    ) {
        let cost = service.storage_cost(gb, hours)
            + puts as f64 * service.cost_put
            + gets as f64 * service.cost_get;
        let category = match service.kind {
            StorageKind::ObjectStore => CostCategory::StorageS3,
            StorageKind::InstanceDisk => CostCategory::StorageEc2,
            StorageKind::Local => CostCategory::Local,
        };
        self.breakdown.add(category, cost);
    }

    /// Records a wide-area or intra-cloud transfer of `gb` gigabytes.
    pub fn record_transfer(&mut self, gb: Gigabytes, direction: TransferDirection) {
        let pricing = self.transfer.unwrap_or(TransferPricing {
            in_per_gb: 0.0,
            out_per_gb: 0.0,
            intra_cloud_per_gb: 0.0,
        });
        let gb = gb.max(0.0);
        let cost = match direction {
            TransferDirection::In => {
                self.uploaded_gb += gb;
                gb * pricing.in_per_gb
            }
            TransferDirection::Out => {
                self.downloaded_gb += gb;
                gb * pricing.out_per_gb
            }
            TransferDirection::IntraCloud => gb * pricing.intra_cloud_per_gb,
        };
        self.breakdown.add(CostCategory::NetworkTransfer, cost);
    }

    /// Total cost across all categories, including open sessions *not yet*
    /// stopped (they are not counted — call [`Self::close_all`] first if the
    /// deployment is finished).
    pub fn total_cost(&self) -> f64 {
        self.breakdown.total()
    }

    /// Per-category breakdown (Figure 5 style).
    pub fn breakdown(&self) -> &CostBreakdown {
        &self.breakdown
    }

    /// Billed instance-hours per instance type.
    pub fn instance_hours(&self, instance_name: &str) -> f64 {
        self.instance_hours
            .get(instance_name)
            .copied()
            .unwrap_or(0.0)
    }

    /// Closes every open rental session at time `now` and returns the total
    /// amount charged for them.
    pub fn close_all(&mut self, now: Hours) -> f64 {
        let ids: Vec<u64> = self.open_sessions.keys().copied().collect();
        ids.into_iter().map(|id| self.stop_instance(id, now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn catalog() -> Catalog {
        Catalog::aws_with_local_cluster(5)
    }

    #[test]
    fn instance_hours_round_up() {
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        let s = acct.start_instance(large, 0.0);
        // 1.1 hours elapsed -> 2 hours billed.
        let cost = acct.stop_instance(s, 1.1);
        assert!((cost - 2.0 * 0.34).abs() < 1e-9);
        assert!((acct.instance_hours("m1.large") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn minimum_one_hour_is_billed() {
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        let s = acct.start_instance(large, 2.0);
        let cost = acct.stop_instance(s, 2.0);
        assert!((cost - 0.34).abs() < 1e-9);
    }

    #[test]
    fn hadoop_s3_scenario_two_hours_charged_for_one_hour_of_work() {
        // §6.2: processing finished in a little over one hour but two full
        // hours were charged for each of the 100 instances.
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        let sessions: Vec<u64> = (0..100).map(|_| acct.start_instance(large, 0.0)).collect();
        for s in sessions {
            acct.stop_instance(s, 1.1);
        }
        assert!(
            (acct.breakdown().get(CostCategory::Computation) - 100.0 * 2.0 * 0.34).abs() < 1e-6
        );
    }

    #[test]
    fn revoked_sessions_do_not_pay_the_terminated_partial_hour() {
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        // Out-bid 2.6 hours in: two completed hours charged, the third free.
        let s = acct.start_instance_at_price(large, 0.0, 0.2);
        let cost = acct.stop_instance_revoked(s, 2.6);
        assert!((cost - 2.0 * 0.2).abs() < 1e-9);
        assert!((acct.instance_hours("m1.large") - 2.0).abs() < 1e-9);
        // Revoked before the first hour completed: nothing charged at all
        // (the customer-initiated stop would have paid the minimum hour).
        let s = acct.start_instance_at_price(large, 10.0, 0.2);
        assert_eq!(acct.stop_instance_revoked(s, 10.4), 0.0);
        // Unknown sessions still charge nothing.
        assert_eq!(acct.stop_instance_revoked(999, 5.0), 0.0);
    }

    #[test]
    fn local_instances_cost_nothing() {
        let cat = catalog();
        let local = cat.instance("local").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        let s = acct.start_instance(local, 0.0);
        assert_eq!(acct.stop_instance(s, 10.0), 0.0);
        assert_eq!(acct.total_cost(), 0.0);
    }

    #[test]
    fn spot_sessions_use_effective_price() {
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        let s = acct.start_instance_at_price(large, 0.0, 0.13);
        let cost = acct.stop_instance(s, 3.0);
        assert!((cost - 3.0 * 0.13).abs() < 1e-9);
    }

    #[test]
    fn storage_and_requests_are_categorized() {
        let cat = catalog();
        let s3 = cat.storage("S3").unwrap();
        let disk = cat.storage("EC2-disk").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        acct.record_storage(s3, 32.0, 6.0, 512, 512);
        acct.record_storage(disk, 32.0, 6.0, 0, 0);
        assert!(acct.breakdown().get(CostCategory::StorageS3) > 0.0);
        assert_eq!(acct.breakdown().get(CostCategory::StorageEc2), 0.0);
        let expected = s3.storage_cost(32.0, 6.0) + 512.0 * s3.cost_put + 512.0 * s3.cost_get;
        assert!((acct.breakdown().get(CostCategory::StorageS3) - expected).abs() < 1e-9);
    }

    #[test]
    fn transfers_track_direction_and_volume() {
        let cat = catalog();
        let mut acct = BillingAccount::new(cat.transfer);
        acct.record_transfer(32.0, TransferDirection::In);
        acct.record_transfer(1.0, TransferDirection::Out);
        acct.record_transfer(10.0, TransferDirection::IntraCloud);
        assert!((acct.uploaded_gb - 32.0).abs() < 1e-12);
        assert!((acct.downloaded_gb - 1.0).abs() < 1e-12);
        let expected = 32.0 * 0.10 + 1.0 * 0.12;
        assert!((acct.breakdown().get(CostCategory::NetworkTransfer) - expected).abs() < 1e-9);
    }

    #[test]
    fn open_accrual_previews_the_close_all_charge() {
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let local = cat.instance("local").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        acct.start_instance_at_price(large, 0.0, 0.2);
        acct.start_instance(large, 0.5);
        acct.start_instance(local, 0.0);
        // 2.3h elapsed → 3h, 1.8h elapsed → 2h; the local node is free.
        let preview = acct.open_accrual(2.3);
        assert!((preview - (3.0 * 0.2 + 2.0 * 0.34)).abs() < 1e-9);
        // The preview matches what closing at the same instant charges,
        // and recorded nothing itself.
        assert_eq!(acct.total_cost(), 0.0);
        let charged = acct.close_all(2.3);
        assert!((charged - preview).abs() < 1e-9);
        assert_eq!(acct.open_accrual(5.0), 0.0);
    }

    #[test]
    fn close_all_sweeps_open_sessions() {
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        for _ in 0..3 {
            acct.start_instance(large, 0.0);
        }
        assert_eq!(acct.open_sessions(), 3);
        let cost = acct.close_all(2.0);
        assert_eq!(acct.open_sessions(), 0);
        assert!((cost - 3.0 * 2.0 * 0.34).abs() < 1e-9);
    }

    #[test]
    fn unknown_session_charges_nothing() {
        let cat = catalog();
        let mut acct = BillingAccount::new(cat.transfer);
        assert_eq!(acct.stop_instance(999, 5.0), 0.0);
    }

    #[test]
    fn breakdown_total_matches_sum() {
        let cat = catalog();
        let large = cat.instance("m1.large").unwrap();
        let s3 = cat.storage("S3").unwrap();
        let mut acct = BillingAccount::new(cat.transfer);
        let s = acct.start_instance(large, 0.0);
        acct.stop_instance(s, 1.0);
        acct.record_storage(s3, 10.0, 1.0, 100, 0);
        acct.record_transfer(10.0, TransferDirection::In);
        let sum: f64 = acct.breakdown().iter().map(|(_, v)| v).sum();
        assert!((acct.total_cost() - sum).abs() < 1e-12);
    }
}
