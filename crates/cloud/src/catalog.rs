//! Service catalog: instance types, storage services and transfer pricing.
//!
//! The defaults encode Amazon's July-2011 US-East price sheet, which is the
//! price structure the paper's evaluation uses (§6.1), together with the
//! measured k-means throughput per instance type the paper reports
//! (0.44 GB/h per m1.large node) and the specified-vs-measured divergence of
//! Figure 1.

use crate::{Gigabytes, Hours};
use serde::{Deserialize, Serialize};

/// A rentable compute instance type (EC2 instance type or a local machine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Provider-facing name, e.g. `"m1.large"` or `"local"`.
    pub name: String,
    /// Specified compute capacity in EC2 Compute Units (1 ECU ≈ a 1.0–1.2 GHz
    /// 2007 Opteron/Xeon). Local machines get their equivalent rating.
    pub ecu: f64,
    /// Memory in GB (informational; the planner does not model memory).
    pub memory_gb: f64,
    /// Size of the bundled virtual disk in GB — the "resource overlap" of
    /// §4.6 that lets instances double as storage.
    pub disk_gb: Gigabytes,
    /// On-demand price per instance-hour in USD. Zero for customer-owned
    /// local machines (their use incurs no marginal cost, §2.1).
    pub hourly_price: f64,
    /// *Measured* application throughput in GB/h per node for the evaluation
    /// workload (k-means). This is what the planner should use.
    pub measured_throughput_gbph: f64,
    /// Maximum number of simultaneously rentable instances (`None` =
    /// effectively unlimited, as for EC2; `Some(n)` for a local cluster).
    pub max_instances: Option<usize>,
}

impl InstanceType {
    /// Throughput *projected* from the specified ECU rating by linear scaling
    /// from a reference instance, the naive estimate Figure 1 shows diverging
    /// from reality.
    pub fn projected_throughput_gbph(&self, reference: &InstanceType) -> f64 {
        if reference.ecu <= 0.0 {
            return 0.0;
        }
        reference.measured_throughput_gbph * self.ecu / reference.ecu
    }

    /// Price-performance ratio in USD per GB processed (lower is better).
    pub fn dollars_per_gb(&self) -> f64 {
        if self.measured_throughput_gbph <= 0.0 {
            return f64::INFINITY;
        }
        self.hourly_price / self.measured_throughput_gbph
    }

    /// `true` for customer-owned machines that incur no rental cost.
    pub fn is_local(&self) -> bool {
        self.hourly_price == 0.0
    }
}

/// The class of a storage service, used for cost-breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// A dedicated object store such as S3.
    ObjectStore,
    /// Virtual disks bundled with compute instances (EC2 local disks).
    InstanceDisk,
    /// Customer-owned local storage.
    Local,
}

/// A storage service offering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageService {
    /// Provider-facing name, e.g. `"S3"`.
    pub name: String,
    /// Which class of storage this is.
    pub kind: StorageKind,
    /// Cost per GB-hour of data kept in the service (the paper's
    /// `cost_t_store`, e.g. `2.08333e-4` $/GB/h ≈ $0.15/GB-month for S3).
    pub cost_per_gb_hour: f64,
    /// Cost per PUT/upload operation (the paper's `cost_put`).
    pub cost_put: f64,
    /// Cost per GET/download operation (the paper's `cost_get`).
    pub cost_get: f64,
    /// Capacity limit in GB (`None` = unlimited, as for S3).
    pub capacity_gb: Option<Gigabytes>,
    /// Sustained throughput in MB/s a single client sees against this
    /// backend (used by the storage-layer comparison of Figure 15).
    pub throughput_mbps: f64,
    /// Replication factor the service maintains internally.
    pub replication: u32,
}

impl StorageService {
    /// Storage cost of keeping `gb` gigabytes for `hours` hours.
    pub fn storage_cost(&self, gb: Gigabytes, hours: Hours) -> f64 {
        self.cost_per_gb_hour * gb.max(0.0) * hours.max(0.0)
    }

    /// Request cost of uploading `gb` as objects of `object_size_mb` MB each
    /// (the per-byte translation of per-operation pricing described in §4.2).
    pub fn put_cost(&self, gb: Gigabytes, object_size_mb: f64) -> f64 {
        if object_size_mb <= 0.0 {
            return 0.0;
        }
        let ops = (gb.max(0.0) * 1024.0 / object_size_mb).ceil();
        self.cost_put * ops
    }

    /// Request cost of downloading `gb` as objects of `object_size_mb` MB each.
    pub fn get_cost(&self, gb: Gigabytes, object_size_mb: f64) -> f64 {
        if object_size_mb <= 0.0 {
            return 0.0;
        }
        let ops = (gb.max(0.0) * 1024.0 / object_size_mb).ceil();
        self.cost_get * ops
    }
}

/// Wide-area and intra-cloud transfer pricing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPricing {
    /// Cost per GB transferred from the customer into the cloud.
    pub in_per_gb: f64,
    /// Cost per GB transferred from the cloud back to the customer.
    pub out_per_gb: f64,
    /// Cost per GB moved between services inside the same provider
    /// (EC2 ↔ S3 within a region is free on AWS).
    pub intra_cloud_per_gb: f64,
}

impl TransferPricing {
    /// AWS US-East pricing as of July 2011.
    pub fn aws_july_2011() -> Self {
        Self {
            in_per_gb: 0.10,
            out_per_gb: 0.12,
            intra_cloud_per_gb: 0.0,
        }
    }
}

/// The full set of services available to a deployment: instance types,
/// storage services, transfer pricing and the customer's uplink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    /// Rentable instance types (cloud and local).
    pub instances: Vec<InstanceType>,
    /// Storage services.
    pub storages: Vec<StorageService>,
    /// Transfer pricing between the customer and the cloud.
    pub transfer: TransferPricing,
    /// Customer uplink bandwidth in Mbit/s (16 Mbit/s in most experiments,
    /// 8 Mbit/s in the storage-mix experiment of Figure 8).
    pub uplink_mbps: f64,
}

impl Catalog {
    /// The AWS July-2011 catalog used throughout the paper's evaluation:
    /// m1.large, m1.xlarge and c1.xlarge instances, S3, EC2 instance disks,
    /// and a 16 Mbit/s customer uplink.
    pub fn aws_july_2011() -> Self {
        let m1_large = InstanceType {
            name: "m1.large".into(),
            ecu: 4.0,
            memory_gb: 7.5,
            disk_gb: 850.0,
            hourly_price: 0.34,
            measured_throughput_gbph: 0.44,
            max_instances: None,
        };
        // Figure 1: measured throughput grows sub-linearly in ECU, so the
        // divergence between projected and measured performance widens with
        // larger instance types.
        let m1_xlarge = InstanceType {
            name: "m1.xlarge".into(),
            ecu: 8.0,
            memory_gb: 15.0,
            disk_gb: 1690.0,
            hourly_price: 0.68,
            measured_throughput_gbph: 0.62,
            max_instances: None,
        };
        let c1_xlarge = InstanceType {
            name: "c1.xlarge".into(),
            ecu: 20.0,
            memory_gb: 7.0,
            disk_gb: 1690.0,
            hourly_price: 0.68,
            measured_throughput_gbph: 1.05,
            max_instances: None,
        };
        let s3 = StorageService {
            name: "S3".into(),
            kind: StorageKind::ObjectStore,
            cost_per_gb_hour: 2.083_333_32e-4,
            cost_put: 1.0e-5,
            cost_get: 1.0e-6,
            capacity_gb: None,
            throughput_mbps: 14.0,
            replication: 3,
        };
        let ec2_disk = StorageService {
            name: "EC2-disk".into(),
            kind: StorageKind::InstanceDisk,
            cost_per_gb_hour: 0.0,
            cost_put: 0.0,
            cost_get: 0.0,
            capacity_gb: Some(850.0),
            throughput_mbps: 20.0,
            replication: 1,
        };
        Self {
            instances: vec![m1_large, m1_xlarge, c1_xlarge],
            storages: vec![s3, ec2_disk],
            transfer: TransferPricing::aws_july_2011(),
            uplink_mbps: 16.0,
        }
    }

    /// The hybrid-cloud catalog of §6.3: the AWS catalog plus a local cluster
    /// of `nodes` customer-owned machines (AMD Athlon64 dual-core, 2 GB RAM)
    /// that process the workload at the same 0.44 GB/h per node but cost
    /// nothing to use.
    pub fn aws_with_local_cluster(nodes: usize) -> Self {
        let mut cat = Self::aws_july_2011();
        cat.instances.push(InstanceType {
            name: "local".into(),
            ecu: 4.0,
            memory_gb: 2.0,
            disk_gb: 250.0,
            hourly_price: 0.0,
            measured_throughput_gbph: 0.44,
            max_instances: Some(nodes),
        });
        cat.storages.push(StorageService {
            name: "local-disk".into(),
            kind: StorageKind::Local,
            cost_per_gb_hour: 0.0,
            cost_put: 0.0,
            cost_get: 0.0,
            capacity_gb: Some(250.0 * nodes as f64),
            throughput_mbps: 30.0,
            replication: 1,
        });
        cat
    }

    /// Looks up an instance type by name.
    pub fn instance(&self, name: &str) -> Option<&InstanceType> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// Looks up a storage service by name.
    pub fn storage(&self, name: &str) -> Option<&StorageService> {
        self.storages.iter().find(|s| s.name == name)
    }

    /// Customer uplink bandwidth expressed in GB per hour.
    pub fn uplink_gb_per_hour(&self) -> f64 {
        mbps_to_gb_per_hour(self.uplink_mbps)
    }
}

/// Converts a bandwidth in Mbit/s into GB/h (1 GB = 1024^3 bytes).
pub fn mbps_to_gb_per_hour(mbps: f64) -> f64 {
    // Mbit/s -> bytes/s -> GB/h
    (mbps * 1.0e6 / 8.0) * 3600.0 / (1024.0 * 1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_catalog_matches_paper_setup() {
        let cat = Catalog::aws_july_2011();
        let large = cat.instance("m1.large").unwrap();
        assert_eq!(large.ecu, 4.0);
        assert!((large.hourly_price - 0.34).abs() < 1e-9);
        assert!((large.measured_throughput_gbph - 0.44).abs() < 1e-9);
        let s3 = cat.storage("S3").unwrap();
        assert!((s3.cost_put - 1.0e-5).abs() < 1e-12);
        assert!((s3.cost_get - 1.0e-6).abs() < 1e-12);
        assert!(cat.uplink_mbps > 0.0);
    }

    #[test]
    fn xlarge_has_worse_price_performance_than_large() {
        // §6.1: extra-large instances are never chosen because their
        // cost-performance ratio is slightly worse than large instances.
        let cat = Catalog::aws_july_2011();
        let large = cat.instance("m1.large").unwrap();
        let xlarge = cat.instance("m1.xlarge").unwrap();
        assert!(xlarge.dollars_per_gb() > large.dollars_per_gb());
    }

    #[test]
    fn projected_throughput_diverges_with_ecu() {
        // Figure 1: the gap between projected and measured throughput grows
        // with the specified instance performance.
        let cat = Catalog::aws_july_2011();
        let large = cat.instance("m1.large").unwrap();
        let xlarge = cat.instance("m1.xlarge").unwrap();
        let c1 = cat.instance("c1.xlarge").unwrap();
        let gap_x = xlarge.projected_throughput_gbph(large) - xlarge.measured_throughput_gbph;
        let gap_c = c1.projected_throughput_gbph(large) - c1.measured_throughput_gbph;
        assert!(gap_x > 0.0);
        assert!(gap_c > gap_x);
        // The reference projects onto itself exactly.
        assert!(
            (large.projected_throughput_gbph(large) - large.measured_throughput_gbph).abs() < 1e-12
        );
    }

    #[test]
    fn local_cluster_is_free_and_capped() {
        let cat = Catalog::aws_with_local_cluster(5);
        let local = cat.instance("local").unwrap();
        assert!(local.is_local());
        assert_eq!(local.max_instances, Some(5));
        assert_eq!(local.hourly_price, 0.0);
        assert!(cat.storage("local-disk").is_some());
    }

    #[test]
    fn storage_costs_scale_linearly_and_requests_round_up() {
        let cat = Catalog::aws_july_2011();
        let s3 = cat.storage("S3").unwrap();
        let c1 = s3.storage_cost(32.0, 2.0);
        let c2 = s3.storage_cost(64.0, 2.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
        // 1 GB in 64 MB objects = 16 PUTs.
        assert!((s3.put_cost(1.0, 64.0) - 16.0 * s3.cost_put).abs() < 1e-12);
        // Partial objects still cost one request.
        assert!((s3.put_cost(0.001, 64.0) - s3.cost_put).abs() < 1e-12);
        assert_eq!(s3.put_cost(1.0, 0.0), 0.0);
        // Negative inputs are clamped.
        assert_eq!(s3.storage_cost(-5.0, 1.0), 0.0);
    }

    #[test]
    fn uplink_conversion_is_sane() {
        // 16 Mbit/s = 2 MB/s -> roughly 6.7 GB/h.
        let gbh = mbps_to_gb_per_hour(16.0);
        assert!(gbh > 6.0 && gbh < 7.5, "{gbh}");
        // 8 Mbit/s is half of that.
        assert!((mbps_to_gb_per_hour(8.0) - gbh / 2.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_serializes_roundtrip() {
        let cat = Catalog::aws_with_local_cluster(3);
        let json = serde_json::to_string(&cat).unwrap();
        let back: Catalog = serde_json::from_str(&json).unwrap();
        assert_eq!(cat, back);
    }
}
