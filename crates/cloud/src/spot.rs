//! Spot markets: price traces and a bid/termination simulator (§4.7, §6.5).
//!
//! The paper evaluates spot-instance savings against two price histories:
//! the real EC2 m1.large spot trace (which shows *no* diurnal pattern and is
//! hard to predict) and a synthetic trace derived from an electricity spot
//! market (clamped non-negative and capped below the on-demand price), which
//! *does* have exploitable daily regularity. [`SpotTrace`] generates both
//! shapes reproducibly from a seed; [`SpotMarket`] simulates allocating spot
//! instances against a trace with a maximum bid, including out-bid
//! termination and the EC2 rule that a partial hour is not charged when the
//! provider terminates the instance.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which synthetic generator produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Modeled after the real EC2 m1.large history: mean-reverting noise with
    /// occasional spikes and no time-of-day structure (Figure 13b).
    AwsLike,
    /// Modeled after an electricity spot market: strong diurnal cycle plus
    /// noise, clamped non-negative and capped below the on-demand price
    /// (Figure 13a).
    ElectricityLike,
}

/// An hourly spot price history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotTrace {
    kind: TraceKind,
    /// Price for hour `t` in USD per instance-hour.
    prices: Vec<f64>,
}

impl SpotTrace {
    /// Builds a trace from explicit hourly prices (e.g. loaded from a CSV of
    /// the real AWS history).
    pub fn from_prices(kind: TraceKind, prices: Vec<f64>) -> Self {
        Self { kind, prices }
    }

    /// Generates an AWS-like trace of `hours` hourly prices.
    ///
    /// Mean-reverting around ~0.17 $/h with heavy-tailed upward spikes and no
    /// diurnal component, bounded to the 0.15–0.45 band visible in the
    /// paper's Figure 13b.
    pub fn aws_like(seed: u64, hours: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut prices = Vec::with_capacity(hours);
        let mut level: f64 = 0.17;
        for _ in 0..hours {
            // Mean reversion plus noise.
            let noise: f64 = rng.gen_range(-0.02..0.02);
            level += 0.3 * (0.17 - level) + noise;
            // Occasional spikes (~3% of hours) unrelated to time of day.
            let spike = if rng.gen_bool(0.03) {
                rng.gen_range(0.05..0.28)
            } else {
                0.0
            };
            let p = (level + spike).clamp(0.15, 0.45);
            prices.push(p);
        }
        Self {
            kind: TraceKind::AwsLike,
            prices,
        }
    }

    /// Generates an electricity-market-like trace of `hours` hourly prices:
    /// a 24-hour sinusoidal demand cycle plus noise, clamped non-negative and
    /// kept below the m1.large on-demand price (0.34 $/h), as the paper does
    /// when adapting the electricity data (§6.5).
    pub fn electricity_like(seed: u64, hours: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut prices = Vec::with_capacity(hours);
        for t in 0..hours {
            let phase = (t % 24) as f64 / 24.0 * std::f64::consts::TAU;
            // Daily peak in the (simulated) afternoon, trough at night.
            let diurnal = 0.22 + 0.10 * (phase - std::f64::consts::FRAC_PI_2).sin();
            let noise: f64 = rng.gen_range(-0.04..0.04);
            let weekly = 0.02 * (((t / 24) % 7) as f64 / 7.0 * std::f64::consts::TAU).sin();
            let p = (diurnal + noise + weekly).clamp(0.05, 0.335);
            prices.push(p);
        }
        Self {
            kind: TraceKind::ElectricityLike,
            prices,
        }
    }

    /// Which generator (or source) produced this trace.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Number of hours covered.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Price at hour `t` (clamped to the last known price past the end).
    pub fn price_at(&self, t: usize) -> f64 {
        match self.prices.get(t) {
            Some(p) => *p,
            None => self.prices.last().copied().unwrap_or(0.0),
        }
    }

    /// The raw hourly prices.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Prices for hours `[start, start + len)`, clamping at the trace end.
    pub fn window(&self, start: usize, len: usize) -> Vec<f64> {
        (start..start + len).map(|t| self.price_at(t)).collect()
    }

    /// Maximum price over the `n` hours strictly before `t` (the statistic
    /// the paper's simple `-pX` predictors bid with). Returns `None` when
    /// there is no history before `t`.
    pub fn max_over_previous(&self, t: usize, n: usize) -> Option<f64> {
        if t == 0 || n == 0 {
            return None;
        }
        let start = t.saturating_sub(n);
        self.prices[start..t.min(self.prices.len())]
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            })
    }
}

/// Result of running one spot instance request against a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotInstanceOutcome {
    /// Whole hours the instance actually ran before completing or being
    /// out-bid.
    pub hours_run: usize,
    /// Amount charged (spot price of each completed hour; the final partial
    /// hour is free if the provider terminated the instance).
    pub cost: f64,
    /// `true` if the instance was terminated because the spot price exceeded
    /// the bid before the requested hours completed.
    pub out_bid: bool,
}

/// A spot market driven by a price trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotMarket {
    trace: SpotTrace,
    /// On-demand price of the same instance type, used as the price ceiling a
    /// rational customer would bid (and for "regular" baseline comparisons).
    pub on_demand_price: f64,
}

impl SpotMarket {
    /// Creates a market over the given trace.
    pub fn new(trace: SpotTrace, on_demand_price: f64) -> Self {
        Self {
            trace,
            on_demand_price,
        }
    }

    /// The underlying price trace.
    pub fn trace(&self) -> &SpotTrace {
        &self.trace
    }

    /// Current spot price at hour `t`.
    pub fn price_at(&self, t: usize) -> f64 {
        self.trace.price_at(t)
    }

    /// `true` if a request with maximum bid `bid` would be granted at hour `t`.
    pub fn bid_accepted(&self, t: usize, bid: f64) -> bool {
        bid >= self.trace.price_at(t)
    }

    /// Runs one instance starting at hour `start` for up to `hours_needed`
    /// whole hours with maximum bid `bid`.
    ///
    /// Each hour the instance is charged the *spot price of that hour* (not
    /// the bid). If the spot price rises above the bid the instance is
    /// terminated at the start of that hour and the customer is **not**
    /// charged for it (EC2's out-of-bid rule).
    pub fn run_instance(&self, start: usize, hours_needed: usize, bid: f64) -> SpotInstanceOutcome {
        let mut cost = 0.0;
        let mut hours_run = 0;
        for h in 0..hours_needed {
            let t = start + h;
            let price = self.trace.price_at(t);
            if price > bid {
                return SpotInstanceOutcome {
                    hours_run,
                    cost,
                    out_bid: true,
                };
            }
            cost += price;
            hours_run += 1;
        }
        SpotInstanceOutcome {
            hours_run,
            cost,
            out_bid: false,
        }
    }

    /// Cost of running the same instance on-demand for `hours` whole hours.
    pub fn on_demand_cost(&self, hours: usize) -> f64 {
        self.on_demand_price * hours as f64
    }

    /// First hour `>= from` at which a session with maximum bid `bid` is
    /// out-bid (spot price strictly above the bid) — the hour at which the
    /// provider would terminate it, [`Self::run_instance`]-style. Returns
    /// `None` when no such hour exists on the trace. Past the trace end the
    /// price clamps to the last known value, so an out-bid verdict there
    /// holds forever.
    pub fn next_revocation(&self, from: usize, bid: f64) -> Option<usize> {
        if from >= self.trace.len() {
            return (self.trace.price_at(from) > bid).then_some(from);
        }
        (from..self.trace.len()).find(|&t| self.trace.price_at(t) > bid)
    }

    /// First hour `>= from` at which a request with maximum bid `bid` would
    /// be granted again (spot price at or below the bid). Returns `None`
    /// when the price never comes back down on the trace — a fleet whose
    /// sessions were revoked then stays out of the market for good.
    pub fn next_acceptance(&self, from: usize, bid: f64) -> Option<usize> {
        if from >= self.trace.len() {
            return (self.trace.price_at(from) <= bid).then_some(from);
        }
        (from..self.trace.len()).find(|&t| self.trace.price_at(t) <= bid)
    }

    /// Iterator over every out-bid hour in `[start, end)` for a session
    /// bidding `bid`: the hours at which the trace would terminate such a
    /// session. This is the trace-driven revocation schedule a fleet driver
    /// turns into simulation events — each yielded hour is one per-hour
    /// out-bid check from [`Self::run_instance`], detached from any single
    /// instance so many concurrent sessions can share it.
    pub fn revocation_hours(&self, start: usize, end: usize, bid: f64) -> RevocationHours<'_> {
        RevocationHours {
            market: self,
            next: start,
            end,
            bid,
        }
    }

    /// `true` when a session with bid `bid` held at hour `t` would be
    /// terminated (the spot price rose strictly above the bid).
    pub fn out_bid_at(&self, t: usize, bid: f64) -> bool {
        self.trace.price_at(t) > bid
    }

    /// Number of consecutive hours ending at `t` (inclusive, walking
    /// backwards) in which a session bidding `bid` would have survived —
    /// 0 when hour `t` itself is out-bid. A circuit breaker deciding
    /// whether the market has calmed down asks exactly this question:
    /// "how long has the trace been clean?".
    pub fn clean_streak_ending_at(&self, t: usize, bid: f64) -> usize {
        (0..=t)
            .rev()
            .take_while(|&h| !self.out_bid_at(h, bid))
            .count()
    }

    /// Expected spot prices for hours `[start, start + len)`, each capped at
    /// the on-demand price (a rational customer never bids above it). This
    /// is the per-interval price expectation a fleet scheduler feeds into
    /// the planner's model (eq. 6) so every concurrent tenant plans against
    /// the *same* market state.
    pub fn price_forecast(&self, start: usize, len: usize) -> Vec<f64> {
        (start..start + len)
            .map(|t| self.trace.price_at(t).min(self.on_demand_price))
            .collect()
    }
}

/// Iterator over the out-bid hours of a trace window (see
/// [`SpotMarket::revocation_hours`]).
#[derive(Debug, Clone)]
pub struct RevocationHours<'a> {
    market: &'a SpotMarket,
    next: usize,
    end: usize,
    bid: f64,
}

impl Iterator for RevocationHours<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.next < self.end {
            let t = self.next;
            self.next += 1;
            if self.market.out_bid_at(t, self.bid) {
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_streak_counts_back_from_the_query_hour() {
        // Hours:           0    1    2    3    4    5
        let prices = vec![0.1, 0.5, 0.1, 0.1, 0.1, 0.5];
        let market = SpotMarket::new(SpotTrace::from_prices(TraceKind::AwsLike, prices), 0.34);
        let bid = 0.3;
        assert_eq!(market.clean_streak_ending_at(0, bid), 1);
        assert_eq!(
            market.clean_streak_ending_at(1, bid),
            0,
            "hour 1 is out-bid"
        );
        assert_eq!(market.clean_streak_ending_at(2, bid), 1);
        assert_eq!(
            market.clean_streak_ending_at(4, bid),
            3,
            "hours 2..=4 clean"
        );
        assert_eq!(market.clean_streak_ending_at(5, bid), 0);
        // Past the trace end the price clamps to the last value (out-bid
        // here), so the streak stays zero forever.
        assert_eq!(market.clean_streak_ending_at(100, bid), 0);
        // A bid above every price sees the whole history as clean.
        assert_eq!(market.clean_streak_ending_at(4, 1.0), 5);
    }

    #[test]
    fn traces_are_reproducible_and_sized() {
        let a1 = SpotTrace::aws_like(7, 24 * 30);
        let a2 = SpotTrace::aws_like(7, 24 * 30);
        assert_eq!(a1, a2);
        assert_eq!(a1.len(), 720);
        let b = SpotTrace::aws_like(8, 24 * 30);
        assert_ne!(a1, b);
    }

    #[test]
    fn aws_like_prices_stay_in_band() {
        let t = SpotTrace::aws_like(42, 24 * 60);
        for &p in t.prices() {
            assert!((0.15..=0.45).contains(&p), "price {p} out of band");
        }
    }

    #[test]
    fn electricity_like_stays_below_on_demand() {
        let t = SpotTrace::electricity_like(42, 24 * 60);
        for &p in t.prices() {
            assert!(p >= 0.0, "negative price {p}");
            assert!(p < 0.34, "price {p} not below on-demand");
        }
    }

    #[test]
    fn electricity_like_has_diurnal_structure_aws_like_does_not() {
        // Correlate each trace with a 24h sinusoid; the electricity trace
        // should correlate much more strongly.
        fn diurnal_correlation(t: &SpotTrace) -> f64 {
            let n = t.len() as f64;
            let mean = t.prices().iter().sum::<f64>() / n;
            let mut num = 0.0;
            let mut den_p = 0.0;
            let mut den_s = 0.0;
            for (i, &p) in t.prices().iter().enumerate() {
                let phase = (i % 24) as f64 / 24.0 * std::f64::consts::TAU;
                let s = (phase - std::f64::consts::FRAC_PI_2).sin();
                num += (p - mean) * s;
                den_p += (p - mean).powi(2);
                den_s += s * s;
            }
            (num / (den_p.sqrt() * den_s.sqrt())).abs()
        }
        let el = SpotTrace::electricity_like(3, 24 * 30);
        let aws = SpotTrace::aws_like(3, 24 * 30);
        assert!(
            diurnal_correlation(&el) > 0.5,
            "electricity corr {}",
            diurnal_correlation(&el)
        );
        assert!(
            diurnal_correlation(&aws) < 0.2,
            "aws corr {}",
            diurnal_correlation(&aws)
        );
    }

    #[test]
    fn price_at_clamps_past_end() {
        let t = SpotTrace::from_prices(TraceKind::AwsLike, vec![0.2, 0.3]);
        assert_eq!(t.price_at(1), 0.3);
        assert_eq!(t.price_at(100), 0.3);
    }

    #[test]
    fn max_over_previous_window() {
        let t = SpotTrace::from_prices(TraceKind::AwsLike, vec![0.1, 0.5, 0.2, 0.3]);
        assert_eq!(t.max_over_previous(3, 2), Some(0.5));
        assert_eq!(t.max_over_previous(3, 1), Some(0.2));
        assert_eq!(t.max_over_previous(0, 5), None);
        assert_eq!(t.max_over_previous(2, 0), None);
    }

    #[test]
    fn out_bid_terminates_without_charging_partial_hour() {
        let t = SpotTrace::from_prices(TraceKind::AwsLike, vec![0.2, 0.2, 0.5, 0.2]);
        let m = SpotMarket::new(t, 0.34);
        let o = m.run_instance(0, 4, 0.25);
        assert!(o.out_bid);
        assert_eq!(o.hours_run, 2);
        assert!((o.cost - 0.4).abs() < 1e-12);
    }

    #[test]
    fn successful_run_charges_spot_not_bid() {
        let t = SpotTrace::from_prices(TraceKind::AwsLike, vec![0.2, 0.18, 0.22]);
        let m = SpotMarket::new(t, 0.34);
        let o = m.run_instance(0, 3, 0.34);
        assert!(!o.out_bid);
        assert_eq!(o.hours_run, 3);
        assert!((o.cost - 0.6).abs() < 1e-12);
        assert!(o.cost < m.on_demand_cost(3));
    }

    #[test]
    fn bid_acceptance_matches_current_price() {
        let t = SpotTrace::from_prices(TraceKind::AwsLike, vec![0.2, 0.4]);
        let m = SpotMarket::new(t, 0.34);
        assert!(m.bid_accepted(0, 0.25));
        assert!(!m.bid_accepted(1, 0.25));
    }

    #[test]
    fn revocation_hours_match_per_hour_out_bid_checks() {
        let t = SpotTrace::from_prices(TraceKind::AwsLike, vec![0.2, 0.4, 0.5, 0.2, 0.6, 0.1]);
        let m = SpotMarket::new(t, 0.34);
        let hours: Vec<usize> = m.revocation_hours(0, 6, 0.34).collect();
        assert_eq!(hours, vec![1, 2, 4]);
        // A window cuts the schedule without shifting it.
        let tail: Vec<usize> = m.revocation_hours(3, 6, 0.34).collect();
        assert_eq!(tail, vec![4]);
        // Bidding above every price yields no revocations at all.
        assert_eq!(m.revocation_hours(0, 6, 0.7).count(), 0);
    }

    #[test]
    fn next_revocation_and_acceptance_scan_forward() {
        let t = SpotTrace::from_prices(TraceKind::AwsLike, vec![0.2, 0.5, 0.5, 0.2]);
        let m = SpotMarket::new(t, 0.34);
        assert_eq!(m.next_revocation(0, 0.34), Some(1));
        assert_eq!(m.next_revocation(2, 0.34), Some(2));
        assert_eq!(m.next_acceptance(1, 0.34), Some(3));
        // Past the trace end the clamped last price (0.2) rules.
        assert_eq!(m.next_acceptance(10, 0.34), Some(10));
        assert_eq!(m.next_revocation(10, 0.34), None);
        // A trace that ends expensive never readmits a low bid.
        let stuck = SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, vec![0.2, 0.9]),
            0.34,
        );
        assert_eq!(stuck.next_acceptance(1, 0.34), None);
        assert_eq!(stuck.next_revocation(5, 0.34), Some(5));
    }

    #[test]
    fn spot_is_cheaper_than_on_demand_on_average() {
        // The headline observation of §6.5: spot allocation reduces cost
        // substantially versus regular instances.
        for kind in [TraceKind::AwsLike, TraceKind::ElectricityLike] {
            let trace = match kind {
                TraceKind::AwsLike => SpotTrace::aws_like(11, 24 * 30),
                TraceKind::ElectricityLike => SpotTrace::electricity_like(11, 24 * 30),
            };
            let m = SpotMarket::new(trace, 0.34);
            let mut spot_total = 0.0;
            let mut regular_total = 0.0;
            for start in (0..600).step_by(24) {
                let o = m.run_instance(start, 6, 0.34);
                spot_total += o.cost;
                regular_total += m.on_demand_cost(6);
            }
            assert!(
                spot_total < 0.8 * regular_total,
                "{kind:?}: spot {spot_total} vs regular {regular_total}"
            );
        }
    }
}
