//! Machine-readable service descriptions (§4.2, Figure 3).
//!
//! The paper feeds Conductor a human-readable XML description of each cloud
//! service ("these descriptions could be published by the providers
//! themselves or by third parties"). We keep the same property set —
//! `cost_get`, `cost_put`, `cost_tstore`, `can_compute`, `storage_capacity` —
//! but express it through serde, so descriptions can be read from JSON files
//! or constructed programmatically, and convert to/from the typed catalog
//! entries of [`crate::catalog`].

use crate::catalog::{InstanceType, StorageKind, StorageService};
use serde::{Deserialize, Serialize};

/// A generic description of a cloud service offering, mirroring the paper's
/// XML property list (Figure 3 shows the S3 example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDescription {
    /// Service name, e.g. `"S3"` or `"EC2 m1.large"`.
    pub name: String,
    /// Cost per GET operation in USD.
    #[serde(default)]
    pub cost_get: f64,
    /// Cost per PUT operation in USD.
    #[serde(default)]
    pub cost_put: f64,
    /// Cost per GB-hour of stored data in USD (the paper's `cost_tstore`).
    #[serde(default)]
    pub cost_tstore: f64,
    /// Whether the service can run computation.
    #[serde(default)]
    pub can_compute: bool,
    /// Storage capacity in GB; `-1` encodes "unlimited", as in the paper's
    /// S3 description.
    #[serde(default = "default_capacity")]
    pub storage_capacity: i64,
    /// Hourly price of one compute unit/instance (0 for pure storage
    /// services and customer-owned machines).
    #[serde(default)]
    pub hourly_price: f64,
    /// Processing capacity of one node in GB/h (0 for pure storage services).
    #[serde(default)]
    pub capacity_gbph: f64,
    /// Maximum number of instances that can be allocated (`-1` = unlimited).
    #[serde(default = "default_capacity")]
    pub max_instances: i64,
}

fn default_capacity() -> i64 {
    -1
}

impl ServiceDescription {
    /// The S3 description from Figure 3 of the paper.
    pub fn s3_example() -> Self {
        Self {
            name: "S3".into(),
            cost_get: 1.0e-6,
            cost_put: 1.0e-5,
            cost_tstore: 2.083_333_32e-4,
            can_compute: false,
            storage_capacity: -1,
            hourly_price: 0.0,
            capacity_gbph: 0.0,
            max_instances: -1,
        }
    }

    /// Builds a description from a typed storage service.
    pub fn from_storage(s: &StorageService) -> Self {
        Self {
            name: s.name.clone(),
            cost_get: s.cost_get,
            cost_put: s.cost_put,
            cost_tstore: s.cost_per_gb_hour,
            can_compute: false,
            storage_capacity: s.capacity_gb.map(|c| c as i64).unwrap_or(-1),
            hourly_price: 0.0,
            capacity_gbph: 0.0,
            max_instances: -1,
        }
    }

    /// Builds a description from a typed instance type (a compute service
    /// that also offers its virtual disk as storage — the resource overlap of
    /// §4.6).
    pub fn from_instance(i: &InstanceType) -> Self {
        Self {
            name: i.name.clone(),
            cost_get: 0.0,
            cost_put: 0.0,
            cost_tstore: 0.0,
            can_compute: true,
            storage_capacity: i.disk_gb as i64,
            hourly_price: i.hourly_price,
            capacity_gbph: i.measured_throughput_gbph,
            max_instances: i.max_instances.map(|m| m as i64).unwrap_or(-1),
        }
    }

    /// Converts a compute-capable description back into an [`InstanceType`].
    /// Returns `None` for pure storage services.
    pub fn to_instance(&self) -> Option<InstanceType> {
        if !self.can_compute {
            return None;
        }
        Some(InstanceType {
            name: self.name.clone(),
            ecu: 0.0,
            memory_gb: 0.0,
            disk_gb: if self.storage_capacity < 0 {
                0.0
            } else {
                self.storage_capacity as f64
            },
            hourly_price: self.hourly_price,
            measured_throughput_gbph: self.capacity_gbph,
            max_instances: if self.max_instances < 0 {
                None
            } else {
                Some(self.max_instances as usize)
            },
        })
    }

    /// Converts a storage-capable description back into a [`StorageService`].
    /// Returns `None` when the service offers no storage at all.
    pub fn to_storage(&self) -> Option<StorageService> {
        if self.storage_capacity == 0 {
            return None;
        }
        let kind = if self.can_compute {
            StorageKind::InstanceDisk
        } else if self.hourly_price == 0.0 && self.cost_tstore == 0.0 {
            StorageKind::Local
        } else {
            StorageKind::ObjectStore
        };
        Some(StorageService {
            name: self.name.clone(),
            kind,
            cost_per_gb_hour: self.cost_tstore,
            cost_put: self.cost_put,
            cost_get: self.cost_get,
            capacity_gb: if self.storage_capacity < 0 {
                None
            } else {
                Some(self.storage_capacity as f64)
            },
            throughput_mbps: 15.0,
            replication: 1,
        })
    }

    /// Parses a description from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the description to pretty-printed JSON (the publishable
    /// artifact a provider or third party would distribute).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("description serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn s3_example_matches_figure_3() {
        let d = ServiceDescription::s3_example();
        assert_eq!(d.name, "S3");
        assert!((d.cost_get - 1.0e-6).abs() < 1e-15);
        assert!((d.cost_put - 1.0e-5).abs() < 1e-15);
        assert!((d.cost_tstore - 2.083_333_32e-4).abs() < 1e-12);
        assert!(!d.can_compute);
        assert_eq!(d.storage_capacity, -1);
    }

    #[test]
    fn json_roundtrip() {
        let d = ServiceDescription::s3_example();
        let json = d.to_json();
        let back = ServiceDescription::from_json(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn partial_json_uses_defaults() {
        let d = ServiceDescription::from_json(r#"{"name": "minimal"}"#).unwrap();
        assert_eq!(d.name, "minimal");
        assert_eq!(d.cost_put, 0.0);
        assert_eq!(d.storage_capacity, -1);
        assert!(!d.can_compute);
    }

    #[test]
    fn instance_roundtrips_through_description() {
        let cat = Catalog::aws_with_local_cluster(5);
        let local = cat.instance("local").unwrap();
        let d = ServiceDescription::from_instance(local);
        assert!(d.can_compute);
        let back = d.to_instance().unwrap();
        assert_eq!(back.name, "local");
        assert_eq!(back.max_instances, Some(5));
        assert!((back.measured_throughput_gbph - 0.44).abs() < 1e-12);
    }

    #[test]
    fn storage_roundtrips_through_description() {
        let cat = Catalog::aws_july_2011();
        let s3 = cat.storage("S3").unwrap();
        let d = ServiceDescription::from_storage(s3);
        let back = d.to_storage().unwrap();
        assert_eq!(back.kind, StorageKind::ObjectStore);
        assert!((back.cost_per_gb_hour - s3.cost_per_gb_hour).abs() < 1e-15);
        assert_eq!(back.capacity_gb, None);
    }

    #[test]
    fn pure_storage_description_is_not_an_instance() {
        let d = ServiceDescription::s3_example();
        assert!(d.to_instance().is_none());
        assert!(d.to_storage().is_some());
    }

    #[test]
    fn compute_description_yields_instance_disk_storage() {
        let cat = Catalog::aws_july_2011();
        let large = cat.instance("m1.large").unwrap();
        let d = ServiceDescription::from_instance(large);
        let storage = d.to_storage().unwrap();
        assert_eq!(storage.kind, StorageKind::InstanceDisk);
        assert_eq!(storage.capacity_gb, Some(850.0));
    }
}
