//! # conductor-cloud
//!
//! The priced cloud substrate of the Conductor reproduction. The original
//! system runs against Amazon Web Services; this crate provides a faithful
//! *simulation* of the parts of AWS the paper's evaluation exercises:
//!
//! * an **instance/service catalog** with the July-2011 price sheet used in
//!   the paper (m1.large / m1.xlarge / c1.xlarge, S3, transfer pricing) and
//!   the divergence between *specified* (ECU-projected) and *measured*
//!   application throughput shown in Figure 1,
//! * **service descriptions** — the machine-readable resource descriptions of
//!   §4.2 (the paper uses XML; we use the serde/JSON equivalent),
//! * a **billing account** that meters instance-hours (rounded up per
//!   allocation, exactly like EC2), storage GB-hours, PUT/GET requests and
//!   network transfer, and reports per-category cost breakdowns (Figure 5),
//! * **spot markets**: price traces (an AWS-like non-diurnal trace and an
//!   electricity-derived diurnal trace, Figure 13) and a bid/termination
//!   simulator used by the spot-savings experiment (Figure 14).

pub mod billing;
pub mod catalog;
pub mod description;
pub mod spot;

pub use billing::{BillingAccount, CostBreakdown, CostCategory, TransferDirection};
pub use catalog::{Catalog, InstanceType, StorageKind, StorageService, TransferPricing};
pub use description::ServiceDescription;
pub use spot::{SpotInstanceOutcome, SpotMarket, SpotTrace, TraceKind};

/// Gigabytes, the data unit used throughout the model (the paper reports all
/// data sizes in GB).
pub type Gigabytes = f64;

/// Simulation time is measured in hours (fractional), matching the paper's
/// one-hour planning intervals and EC2's hourly billing granularity.
pub type Hours = f64;
