//! Fixed regression instances for the LP/MIP solver rework: the
//! infeasible / unbounded / iteration-limit error paths, agreement between
//! the warm-started, cold and seed-baseline configurations, and the
//! skeleton/warm-start machinery exposed by `conductor_lp::simplex`.

use conductor_lp::lu::eta_limit;
use conductor_lp::revised::{solve_with_skeleton_revised, RevisedWorkspace};
use conductor_lp::simplex::{solve_with_skeleton, WarmStart};
use conductor_lp::{
    ConstraintOp, Engine, LpError, Problem, Sense, SimplexWorkspace, SolveOptions,
    StandardFormSkeleton,
};
use std::time::Duration;

fn bounds(p: &Problem) -> (Vec<f64>, Vec<f64>) {
    (
        p.variables().iter().map(|v| v.lower).collect(),
        p.variables().iter().map(|v| v.upper).collect(),
    )
}

/// All solver configurations (three engines; warm and cold paths for the
/// two skeleton-based ones), tightest gap.
fn configs() -> [(&'static str, SolveOptions); 5] {
    let exact = SolveOptions {
        relative_gap: 0.0,
        ..Default::default()
    };
    let with = |engine: Engine, warm_start: bool| SolveOptions {
        engine,
        warm_start,
        ..exact.clone()
    };
    [
        ("revised-warm", with(Engine::RevisedSparse, true)),
        ("revised-cold", with(Engine::RevisedSparse, false)),
        ("dense-warm", with(Engine::DenseTableau, true)),
        ("dense-cold", with(Engine::DenseTableau, false)),
        ("seed", with(Engine::SeedBaseline, true)),
    ]
}

#[test]
fn infeasible_lp_is_reported_by_every_configuration() {
    let mut p = Problem::new("inf-lp", Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY);
    p.set_objective([(x, 1.0)]);
    p.add_constraint("lo", [(x, 1.0)], ConstraintOp::Ge, 5.0);
    p.add_constraint("hi", [(x, 1.0)], ConstraintOp::Le, 4.0);
    for (label, opts) in configs() {
        assert!(
            matches!(p.solve_with(&opts), Err(LpError::Infeasible)),
            "{label} did not report infeasibility"
        );
    }
}

#[test]
fn infeasible_mip_with_feasible_relaxation() {
    // Relaxation feasible (x = 1.5) but no integer point.
    let mut p = Problem::new("inf-mip", Sense::Minimize);
    let x = p.add_int_var("x", 0.0, 10.0);
    p.set_objective([(x, 1.0)]);
    p.add_constraint("half", [(x, 2.0)], ConstraintOp::Eq, 3.0);
    for (label, opts) in configs() {
        let err = p.solve_with(&opts).unwrap_err();
        assert!(
            matches!(err, LpError::Infeasible | LpError::NoIncumbent),
            "{label}: {err:?}"
        );
    }
}

#[test]
fn unbounded_lp_is_reported_by_every_configuration() {
    let mut p = Problem::new("unb", Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY);
    let y = p.add_var("y", 0.0, f64::INFINITY);
    p.set_objective([(x, 1.0), (y, 1.0)]);
    p.add_constraint("only-y", [(y, 1.0)], ConstraintOp::Le, 3.0);
    for (label, opts) in configs() {
        assert!(
            matches!(p.solve_with(&opts), Err(LpError::Unbounded)),
            "{label} did not report unboundedness"
        );
    }
}

#[test]
fn unbounded_direction_via_free_variable() {
    let mut p = Problem::new("unb-free", Sense::Minimize);
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
    p.set_objective([(x, 1.0)]);
    p.add_constraint("ub", [(x, 1.0)], ConstraintOp::Le, 10.0);
    for (label, opts) in configs() {
        assert!(
            matches!(p.solve_with(&opts), Err(LpError::Unbounded)),
            "{label} did not report unboundedness"
        );
    }
}

#[test]
fn iteration_limit_is_reported() {
    // A feasible LP given a 1-iteration budget must fail with IterationLimit,
    // not loop or return garbage.
    let mut p = Problem::new("itlim", Sense::Maximize);
    let vars: Vec<_> = (0..6)
        .map(|i| p.add_var(format!("x{i}"), 0.0, 10.0))
        .collect();
    p.set_objective(vars.iter().map(|&v| (v, 1.0)));
    p.add_constraint("cap", vars.iter().map(|&v| (v, 1.0)), ConstraintOp::Ge, 3.0);
    let opts = SolveOptions {
        max_simplex_iterations: 1,
        ..Default::default()
    };
    assert!(matches!(
        p.solve_with(&opts),
        Err(LpError::IterationLimit { .. })
    ));
}

#[test]
fn time_limit_returns_best_feasible_solution() {
    // A zero time budget must still return *some* feasible incumbent (the
    // paper's "use the best solution computed so far" behaviour) or a
    // NoIncumbent error — never hang.
    let mut p = Problem::new("tl", Sense::Maximize);
    let vars: Vec<_> = (0..12)
        .map(|i| p.add_int_var(format!("x{i}"), 0.0, 3.0))
        .collect();
    p.set_objective(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + (i % 5) as f64)),
    );
    p.add_constraint(
        "cap",
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + (i % 3) as f64)),
        ConstraintOp::Le,
        11.0,
    );
    let opts = SolveOptions {
        time_limit: Duration::from_millis(0),
        ..Default::default()
    };
    match p.solve_with(&opts) {
        Ok(sol) => {
            let used: f64 = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| sol.value(v) * (1.0 + (i % 3) as f64))
                .sum();
            assert!(
                used <= 11.0 + 1e-6,
                "time-limited incumbent violates capacity"
            );
        }
        Err(e) => assert!(matches!(e, LpError::NoIncumbent), "{e:?}"),
    }
}

/// The branched-variable pattern branch & bound produces: the warm path must
/// agree with a cold solve on every child, including infeasible children.
#[test]
fn warm_and_cold_agree_on_branching_children() {
    let mut p = Problem::new("children", Sense::Maximize);
    let a = p.add_int_var("a", 0.0, 4.0);
    let b = p.add_int_var("b", 0.0, 4.0);
    let c = p.add_var("c", 0.0, 10.0);
    p.set_objective([(a, 3.0), (b, 5.0), (c, 0.25)]);
    p.add_constraint("r1", [(a, 2.0), (b, 3.0), (c, 1.0)], ConstraintOp::Le, 12.0);
    p.add_constraint("r2", [(a, 1.0), (b, 1.0)], ConstraintOp::Ge, 1.0);
    let (lower, upper) = bounds(&p);
    let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
    let mut ws = SimplexWorkspace::default();
    let root = solve_with_skeleton(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();

    // Sweep bound overrides a branch-and-bound run could produce.
    for (var, lo, hi) in [
        (0usize, 0.0, 1.0),
        (0, 2.0, 4.0),
        (1, 0.0, 0.0),
        (1, 4.0, 4.0),
        (0, 3.0, 2.0), // crossed: infeasible child
    ] {
        let mut l = lower.clone();
        let mut u = upper.clone();
        l[var] = lo;
        u[var] = hi;
        let warm = solve_with_skeleton(&sk, &mut ws, &l, &u, Some(&root.basis), 10_000);
        let mut cold_ws = SimplexWorkspace::default();
        let cold = solve_with_skeleton(&sk, &mut cold_ws, &l, &u, None, 10_000);
        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                assert!(
                    (w.objective - c.objective).abs() < 1e-6,
                    "var {var} in [{lo}, {hi}]: warm {} cold {}",
                    w.objective,
                    c.objective
                );
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
            (w, c) => panic!("var {var} in [{lo}, {hi}]: warm {w:?} vs cold {c:?}"),
        }
    }
}

/// The first skeleton solve is always cold; a hinted resolve reports a
/// non-cold outcome.
#[test]
fn warm_start_outcomes_are_reported() {
    let mut p = Problem::new("outcome", Sense::Minimize);
    let x = p.add_int_var("x", 0.0, 9.0);
    p.set_objective([(x, 1.0)]);
    p.add_constraint("lo", [(x, 2.0)], ConstraintOp::Ge, 7.0);
    let (lower, upper) = bounds(&p);
    let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
    let mut ws = SimplexWorkspace::default();
    let first = solve_with_skeleton(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
    assert_eq!(first.warm, WarmStart::Cold);
    let again =
        solve_with_skeleton(&sk, &mut ws, &lower, &upper, Some(&first.basis), 10_000).unwrap();
    assert_ne!(again.warm, WarmStart::Cold);
    assert!((first.objective - again.objective).abs() < 1e-9);
    let (hits, misses) = ws.warm_start_counts();
    assert_eq!(hits + misses, 1);
}

/// A degenerate LP that cycled the pre-rework ratio test into the iteration
/// limit must now solve (stable pivoting + Bland fallback).
#[test]
fn degenerate_instances_terminate() {
    // Beale's classic cycling example.
    let mut p = Problem::new("beale", Sense::Minimize);
    let x1 = p.add_var("x1", 0.0, f64::INFINITY);
    let x2 = p.add_var("x2", 0.0, f64::INFINITY);
    let x3 = p.add_var("x3", 0.0, f64::INFINITY);
    let x4 = p.add_var("x4", 0.0, f64::INFINITY);
    p.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
    p.add_constraint(
        "c1",
        [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        ConstraintOp::Le,
        0.0,
    );
    p.add_constraint(
        "c2",
        [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        ConstraintOp::Le,
        0.0,
    );
    p.add_constraint("c3", [(x3, 1.0)], ConstraintOp::Le, 1.0);
    let sol = p.solve().unwrap();
    assert!(
        (sol.objective() + 0.05).abs() < 1e-6,
        "objective {}",
        sol.objective()
    );
}

/// Long-horizon drift regression for the revised engine: thousands of
/// consecutive warm reuses through one `RevisedWorkspace` — far beyond the
/// dense engine's retired 32-reuse `REUSE_REFRESH` ceiling — must stay
/// within the stale-state tolerance (1e-6) of an independent cold dense
/// solve of every node, with the factorization *refresh policy* (periodic
/// refactorization on the eta limit plus the per-reuse residual check) as
/// the only safety mechanism.
#[test]
fn revised_warm_reuse_never_drifts_over_thousands_of_reuses() {
    let mut p = Problem::new("drift-horizon", Sense::Maximize);
    let vars: Vec<_> = (0..8)
        .map(|i| p.add_int_var(format!("x{i}"), 0.0, 6.0))
        .collect();
    p.set_objective(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 2.0 + ((i * 5) % 7) as f64 + 0.25)),
    );
    for k in 0..4 {
        p.add_constraint(
            format!("cap{k}"),
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 0.5 + ((i + k) % 3) as f64 * 0.75)),
            ConstraintOp::Le,
            // Roomy enough that every bound pattern below stays feasible.
            40.0 + 3.0 * k as f64,
        );
    }
    let (lower, upper) = bounds(&p);
    let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();

    let mut revised = RevisedWorkspace::default();
    let mut dense_ref = SimplexWorkspace::default();
    let root =
        solve_with_skeleton_revised(&sk, &mut revised, &lower, &upper, None, 100_000).unwrap();
    let mut last_basis = root.basis;
    let mut total_iterations = root.iterations;

    const ROUNDS: usize = 3000;
    let mut worst = 0.0f64;
    for round in 0..ROUNDS {
        // A rolling branching-like bound pattern: tighten one variable per
        // round, cycling lowers in {0,1,2} and uppers in {3..6}.
        let var = round % vars.len();
        let mut lo = lower.clone();
        let mut hi = upper.clone();
        lo[var] = (round / 8 % 3) as f64;
        hi[var] = 3.0 + (round / 8 % 4) as f64;
        let warm =
            solve_with_skeleton_revised(&sk, &mut revised, &lo, &hi, Some(&last_basis), 100_000)
                .unwrap_or_else(|e| panic!("round {round}: revised warm solve failed: {e:?}"));
        let cold = solve_with_skeleton(&sk, &mut dense_ref, &lo, &hi, None, 100_000)
            .unwrap_or_else(|e| panic!("round {round}: dense reference failed: {e:?}"));
        let dev = (warm.objective - cold.objective).abs() / (1.0 + cold.objective.abs());
        worst = worst.max(dev);
        assert!(
            dev < 1e-6,
            "round {round}: revised warm {} drifted from dense cold {} (relative {dev:e})",
            warm.objective,
            cold.objective
        );
        total_iterations += warm.iterations;
        last_basis = warm.basis;
    }

    let (hits, misses) = revised.warm_start_counts();
    assert_eq!(hits + misses, ROUNDS, "every round should attempt a reuse");
    assert!(
        hits as f64 >= 0.95 * ROUNDS as f64,
        "warm reuse should almost always succeed: {hits} hits / {misses} misses"
    );

    // Pin the refresh policy. Every mid-stream refactorization consumes at
    // least `eta_limit(m)` accumulated pivots, so the count is bounded by
    // the pivot budget; and with thousands of reuses each pushing a few
    // pivots the policy must actually fire rather than never refresh.
    let (factorizations, refactorizations) = revised.factorization_counts();
    let m = sk.num_rows();
    assert!(
        refactorizations >= 1,
        "the eta-limit refresh policy never fired over {ROUNDS} reuses \
         ({total_iterations} pivots, eta limit {})",
        eta_limit(m)
    );
    assert!(
        refactorizations <= total_iterations / eta_limit(m) + 1,
        "more refreshes ({refactorizations}) than the pivot budget admits \
         ({total_iterations} pivots / eta limit {})",
        eta_limit(m)
    );
    // Cold fills are the only other factorization source: the root solve
    // plus one per warm miss.
    assert!(
        factorizations <= refactorizations + misses + 1,
        "unexpected extra factorizations: {factorizations} vs {refactorizations} refreshes + {misses} misses + root"
    );
    eprintln!(
        "drift regression: worst relative deviation {worst:e}, {hits}/{ROUNDS} reuses, \
         {factorizations} factorizations ({refactorizations} refreshes)"
    );
}

/// The revised engine inside full branch & bound agrees with the dense
/// engine at a zero gap and reports its factorization counters.
#[test]
fn revised_branch_and_bound_matches_dense_and_reports_factorizations() {
    let mut p = Problem::new("bb-engines", Sense::Maximize);
    let vars: Vec<_> = (0..10)
        .map(|i| p.add_int_var(format!("x{i}"), 0.0, 5.0))
        .collect();
    p.set_objective(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 3.0 + ((i * 7) % 5) as f64 + 0.5)),
    );
    for k in 0..4 {
        p.add_constraint(
            format!("cap{k}"),
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i + k) % 4) as f64)),
            ConstraintOp::Le,
            17.0 + 2.0 * k as f64,
        );
    }
    let exact = SolveOptions {
        relative_gap: 0.0,
        ..Default::default()
    };
    let revised = p
        .solve_with(&SolveOptions {
            engine: Engine::RevisedSparse,
            ..exact.clone()
        })
        .unwrap();
    let dense = p
        .solve_with(&SolveOptions {
            engine: Engine::DenseTableau,
            ..exact
        })
        .unwrap();
    assert!(
        (revised.objective() - dense.objective()).abs() < 1e-6,
        "revised {} vs dense {}",
        revised.objective(),
        dense.objective()
    );
    let stats = revised.stats();
    assert!(
        stats.basis_factorizations >= 1,
        "revised engine must report factorizations: {stats:?}"
    );
    assert_eq!(
        dense.stats().basis_factorizations,
        0,
        "dense engine has no LU factorizations"
    );
}

/// Warm-start statistics surface through `Solution::stats` and the rate
/// helper stays in [0, 1].
#[test]
fn solve_stats_report_warm_start_rate() {
    let mut p = Problem::new("stats", Sense::Maximize);
    let vars: Vec<_> = (0..8)
        .map(|i| p.add_int_var(format!("x{i}"), 0.0, 3.0))
        .collect();
    p.set_objective(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 2.0 + (i % 4) as f64)),
    );
    for k in 0..3 {
        p.add_constraint(
            format!("cap{k}"),
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i + k) % 3) as f64)),
            ConstraintOp::Le,
            10.0,
        );
    }
    let opts = SolveOptions {
        relative_gap: 0.0,
        ..Default::default()
    };
    let sol = p.solve_with(&opts).unwrap();
    let stats = sol.stats();
    let rate = stats.warm_start_rate();
    assert!((0.0..=1.0).contains(&rate), "rate {rate}");
    if stats.nodes_explored > 2 {
        assert!(
            stats.warm_start_hits + stats.warm_start_misses > 0,
            "multi-node solve attempted no warm starts: {stats:?}"
        );
    }
}
