//! The failure-policy layer end to end: seeded fault injection,
//! retry/backoff chains ending in completion or the dead-letter queue,
//! the admission gate's pause/resume hysteresis, the spot-market circuit
//! breaker with on-demand fallback, and the policy-comparison acceptance
//! criterion — retry+breaker+fallback strictly improves deadlines-met
//! over a no-policy fleet on the same faulted churn fixture, bitwise
//! reproducibly.

use conductor_bench::experiments::{churn_fixture, churn_policy, run_fleet_online};
use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::policy::FaultEvent;
use conductor_core::{
    BreakerState, CircuitBreakerConfig, ConductorService, FailurePolicy, FailureThreshold,
    FallbackTier, FaultKind, FaultPlan, FleetEvent, FleetJobRequest, Goal, OutcomeClass,
    ResourcePool, RetryPolicy, TenantState,
};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::time::Duration;

fn fast_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    }
}

fn plain_service(cap: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool).with_solve_options(fast_options())
}

/// A service over an explicit hourly price trace with the given fleet bid
/// (matching the revocation-storm fixtures in `tests/fleet_api.rs`).
fn storm_service(prices: Vec<f64>, bid: f64, cap: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool)
        .with_solve_options(fast_options())
        .with_spot_market(SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, prices),
            0.34,
        ))
        .with_spot_bid(bid)
}

/// Cheap everywhere except a storm at hours `[storm_start, storm_end)`.
fn storm_prices(hours: usize, storm_start: usize, storm_end: usize) -> Vec<f64> {
    (0..hours)
        .map(|t| {
            if (storm_start..storm_end).contains(&t) {
                0.50
            } else {
                0.20
            }
        })
        .collect()
}

fn small_request(tenant: &str, arrival: f64, deadline: f64) -> FleetJobRequest {
    FleetJobRequest::new(
        tenant,
        Workload::KMeansScaled { input_gb: 8 }.spec(),
        Goal::MinimizeCost {
            deadline_hours: deadline,
        },
        arrival,
    )
}

/// An explicit fault plan: task failures at the given fleet hours, always
/// hitting the first running job in pid order (salt 0).
fn task_failures_at(hours: &[f64]) -> FaultPlan {
    FaultPlan {
        events: hours
            .iter()
            .map(|&at_hours| FaultEvent {
                at_hours,
                kind: FaultKind::TaskFailure,
                salt: 0,
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Retry chains and the dead-letter queue.
// ---------------------------------------------------------------------------

#[test]
fn fault_then_retry_completes_the_work() {
    // One tenant, one injected task failure at hour 1. The retry policy
    // re-submits the job 0.5 h later as a fresh arrival; the second
    // attempt runs fault-free and completes.
    let svc = plain_service(200).with_failure_policy(FailurePolicy {
        fault_plan: Some(task_failures_at(&[1.0])),
        retry: Some(RetryPolicy::default()),
        ..FailurePolicy::default()
    });
    let mut fleet = svc.open().unwrap();
    fleet.submit(small_request("solo", 0.0, 8.0)).unwrap();
    fleet.run_to_quiescence();
    let report = fleet.report();

    // The original attempt was aborted by the fault …
    let original = &report.tenants[0];
    assert_eq!(original.attempt, 0);
    assert!(original
        .failure
        .as_deref()
        .unwrap()
        .contains("injected fault"));
    // … and the retry is a fresh tenant record that completed on time.
    let retry = &report.tenants[1];
    assert_eq!(retry.attempt, 1);
    assert_eq!(retry.retry_of, Some(0));
    assert_eq!(retry.outcome_class(), OutcomeClass::Completed);
    assert_eq!(
        retry.execution.as_ref().unwrap().met_deadline,
        Some(true),
        "retry should finish within the original deadline"
    );
    assert_eq!(report.retries, 1);
    assert_eq!(report.dead_lettered, 0);
    assert!(fleet.dead_letters().is_empty());

    // The Retried event carries the deterministic backoff arrival:
    // base 0.5 h after the hour-1 fault.
    let retried = fleet
        .events()
        .iter()
        .find_map(|e| match e {
            FleetEvent::Retried {
                attempt,
                arrival_hours,
                at_hours,
                ..
            } => Some((*attempt, *arrival_hours, *at_hours)),
            _ => None,
        })
        .expect("a Retried event");
    assert_eq!(retried.0, 1);
    assert!((retried.1 - (retried.2 + 0.5)).abs() < 1e-12);
}

#[test]
fn exhausted_retries_land_in_the_dead_letter_queue() {
    // Faults at hours 1, 2.5, 4.5 kill the original and both retries
    // (max_retries = 2): attempt 0 dies at 1.0, retries at 1.5; attempt 1
    // dies at 2.5, retries at 3.5 (backoff doubled); attempt 2 dies at
    // 4.5 with the budget exhausted — dead-lettered.
    let svc = plain_service(200).with_failure_policy(FailurePolicy {
        fault_plan: Some(task_failures_at(&[1.0, 2.5, 4.5])),
        retry: Some(RetryPolicy::default()),
        ..FailurePolicy::default()
    });
    let mut fleet = svc.open().unwrap();
    fleet.submit(small_request("doomed", 0.0, 8.0)).unwrap();
    fleet.run_to_quiescence();
    let report = fleet.report();

    assert_eq!(report.tenants.len(), 3, "original + two retries");
    assert_eq!(report.retries, 2);
    assert_eq!(report.dead_lettered, 1);
    assert_eq!(
        report
            .tenants_by_outcome(OutcomeClass::DeadLettered)
            .count(),
        1
    );

    let dl = &fleet.dead_letters()[0];
    assert_eq!(dl.tenant.0, 2, "the final attempt is the dead letter");
    assert_eq!(dl.original.0, 0, "chained back to the root submission");
    assert_eq!(dl.attempts, 3);
    assert!(dl.reason.contains("injected fault"));
    assert_eq!(dl.tenant_name, "doomed");

    // The DeadLettered event mirrors the queue entry.
    assert!(fleet
        .events()
        .iter()
        .any(|e| matches!(e, FleetEvent::DeadLettered { attempts: 3, .. })));

    // Backoff doubles per attempt: second retry arrives 1.0 h (not
    // 0.5 h) after its predecessor's death.
    let arrivals: Vec<(usize, f64, f64)> = fleet
        .events()
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Retried {
                attempt,
                at_hours,
                arrival_hours,
                ..
            } => Some((*attempt, *at_hours, *arrival_hours)),
            _ => None,
        })
        .collect();
    assert_eq!(arrivals.len(), 2);
    assert!((arrivals[0].2 - (arrivals[0].1 + 0.5)).abs() < 1e-12);
    assert!((arrivals[1].2 - (arrivals[1].1 + 1.0)).abs() < 1e-12);
}

// ---------------------------------------------------------------------------
// Admission gate: pause/resume hysteresis.
// ---------------------------------------------------------------------------

#[test]
fn admission_pauses_on_failures_and_resumes_on_successes() {
    // Window of 2: two early faults fill it with failures (fraction 1.0 >
    // 0.5 → pause); a mid-pause arrival is refused with the gate's
    // reason; two clean completions flush the window (0.0 < 0.25 →
    // resume); a late arrival is admitted again.
    let threshold = FailureThreshold {
        window: 2,
        pause_above: 0.5,
        resume_below: 0.25,
        min_samples: 2,
    };
    let svc = plain_service(400).with_failure_policy(FailurePolicy {
        fault_plan: Some(task_failures_at(&[1.0, 1.1])),
        failure_threshold: Some(threshold),
        ..FailurePolicy::default()
    });
    let mut fleet = svc.open().unwrap();
    // Four early tenants: the faults kill `a` then `b`; `c` and `d`
    // survive and complete around hour 4-5.
    for (name, at) in [("a", 0.0), ("b", 0.1), ("c", 0.2), ("d", 0.3)] {
        fleet.submit(small_request(name, at, 8.0)).unwrap();
    }
    // `late-paused` arrives while the gate is down; `late-open` after the
    // completions have resumed it (MinimizeCost stretches `c` and `d`
    // toward their hour-8.2/8.3 deadlines, so the resume lands there).
    fleet
        .submit(small_request("late-paused", 2.0, 10.0))
        .unwrap();
    fleet.submit(small_request("late-open", 9.5, 16.0)).unwrap();
    fleet.run_to_quiescence();
    let report = fleet.report();

    let paused_at = fleet.events().iter().find_map(|e| match e {
        FleetEvent::AdmissionPaused { at_hours, .. } => Some(*at_hours),
        _ => None,
    });
    let resumed_at = fleet.events().iter().find_map(|e| match e {
        FleetEvent::AdmissionResumed { at_hours, .. } => Some(*at_hours),
        _ => None,
    });
    let paused_at = paused_at.expect("gate should pause after the two faults");
    let resumed_at = resumed_at.expect("gate should resume after the two completions");
    assert!(paused_at < resumed_at);
    assert!(!fleet.admission_paused(), "gate open at quiescence");

    let refused = report.tenant("late-paused").unwrap();
    assert!(!refused.admitted);
    assert!(
        refused
            .rejection
            .as_deref()
            .unwrap()
            .contains("admission paused"),
        "unexpected reason: {:?}",
        refused.rejection
    );
    let admitted = report.tenant("late-open").unwrap();
    assert!(admitted.admitted, "gate should have reopened by hour 9.5");
    assert_eq!(admitted.outcome_class(), OutcomeClass::Completed);
}

// ---------------------------------------------------------------------------
// Circuit breaker: open → half-open → closed, with on-demand fallback.
// ---------------------------------------------------------------------------

#[test]
fn breaker_walks_open_half_open_closed_and_fallback_keeps_the_deadline() {
    // Storm at hours [2, 5): three consecutive out-bid sweeps are three
    // strikes (threshold 3) — the breaker opens at hour 4. Hourly probes
    // then watch the trace: hour 5's probe still sees the dirty hour 4,
    // hours 6-7 accumulate the two clean hours (success threshold 2) and
    // half-open the breaker at 7; hour 8's probe closes it.
    let breaker = CircuitBreakerConfig {
        strike_threshold: 3,
        window_hours: 6.0,
        success_threshold_hours: 2,
        fallback: FallbackTier::OnDemand,
    };
    let svc = storm_service(storm_prices(72, 2, 5), 0.30, 200).with_failure_policy(FailurePolicy {
        circuit_breaker: Some(breaker),
        ..FailurePolicy::default()
    });
    let mut fleet = svc.open().unwrap();
    // `steady` holds spot nodes into the storm, eating all three strikes.
    fleet
        .submit(FleetJobRequest::new(
            "steady",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 16.0,
            },
            0.0,
        ))
        .unwrap();
    // `urgent` arrives while the breaker is open: the fallback buys
    // on-demand capacity instead of waiting out the market.
    fleet.submit(small_request("urgent", 4.5, 10.5)).unwrap();
    fleet.run_to_quiescence();
    let report = fleet.report();

    let mut transitions = Vec::new();
    let mut fallback_tenant = None;
    for e in fleet.events() {
        match e {
            FleetEvent::BreakerOpened { at_hours, strikes } => {
                transitions.push(("open", *at_hours));
                assert_eq!(*strikes, 3);
            }
            FleetEvent::BreakerHalfOpen { at_hours } => transitions.push(("half-open", *at_hours)),
            FleetEvent::BreakerClosed { at_hours } => transitions.push(("closed", *at_hours)),
            FleetEvent::FallbackEngaged { tenant, .. } => fallback_tenant = Some(*tenant),
            _ => {}
        }
    }
    assert_eq!(
        transitions,
        vec![("open", 4.0), ("half-open", 7.0), ("closed", 8.0)],
        "breaker state walk"
    );
    assert_eq!(fleet.breaker_state(), Some(BreakerState::Closed));
    assert!(
        (report.breaker_open_hours - 3.0).abs() < 1e-9,
        "open from hour 4 to the half-open at 7, got {}",
        report.breaker_open_hours
    );

    // The mid-storm arrival was admitted on the fallback tier and met its
    // deadline even though the spot market was untouchable.
    let urgent = report.tenant("urgent").unwrap();
    assert!(urgent.admitted);
    assert_eq!(fallback_tenant.map(|t| t.0), Some(1));
    assert_eq!(
        urgent.execution.as_ref().unwrap().met_deadline,
        Some(true),
        "on-demand fallback should keep the deadline"
    );
}

// ---------------------------------------------------------------------------
// Satellite: a cancelled tenant's bill is quoted consistently.
// ---------------------------------------------------------------------------

#[test]
fn cancelled_tenant_bill_matches_the_pre_cancel_quote_and_fleet_bill() {
    let svc = plain_service(200);
    let mut fleet = svc.open().unwrap();
    let id = fleet.submit(small_request("quitter", 0.0, 8.0)).unwrap();
    fleet.step_until(1.3);

    // Mid-run: the status quote prices the open rental sessions exactly
    // as the abort would settle them (whole-hour ceiling), so the quote,
    // the fleet bill and the post-cancel bill all agree.
    let quote = fleet.status(id).unwrap();
    assert_eq!(quote.state, TenantState::Running);
    assert!(quote.bill_so_far > 0.0, "open sessions accrue charges");
    let fleet_bill_before = fleet.fleet_bill();
    assert!((fleet_bill_before - quote.bill_so_far).abs() < 1e-9);

    assert!(fleet.cancel(id).unwrap());
    let after = fleet.status(id).unwrap();
    assert_eq!(after.state, TenantState::Cancelled);
    assert!(
        (after.bill_so_far - quote.bill_so_far).abs() < 1e-9,
        "cancel settled {} but the quote said {}",
        after.bill_so_far,
        quote.bill_so_far
    );
    assert!((fleet.fleet_bill() - fleet_bill_before).abs() < 1e-9);
}

// ---------------------------------------------------------------------------
// Acceptance: the policy strictly improves the faulted churn fixture,
// every tenant is terminal, bills sum, and reruns are bitwise identical.
// ---------------------------------------------------------------------------

/// The churn comparison pair: the same requests and storm-bearing service,
/// once with faults only and once with faults + retry + breaker/fallback.
fn churn_comparison(jobs: usize) -> (conductor_core::FleetReport, conductor_core::FleetReport) {
    let policy = churn_policy(20_260_808, jobs, {
        let (requests, _) = churn_fixture(jobs, 1.0);
        requests.last().map(|r| r.arrival_hours).unwrap_or(0.0) + 24.0
    });
    let faults_only = FailurePolicy {
        fault_plan: policy.fault_plan.clone(),
        ..FailurePolicy::default()
    };
    let with_policy = FailurePolicy {
        fault_plan: policy.fault_plan.clone(),
        retry: Some(RetryPolicy::default()),
        circuit_breaker: Some(CircuitBreakerConfig::default()),
        ..FailurePolicy::default()
    };
    let (requests, service) = churn_fixture(jobs, 1.0);
    let base = run_fleet_online(&service.clone().with_failure_policy(faults_only), &requests);
    let rescued = run_fleet_online(&service.with_failure_policy(with_policy), &requests);
    (base, rescued)
}

#[test]
fn retry_and_breaker_strictly_improve_deadlines_met_on_faulted_churn() {
    let (no_policy, with_policy) = churn_comparison(32);
    assert!(
        with_policy.deadlines_met > no_policy.deadlines_met,
        "retry+breaker+fallback should strictly improve deadlines met: {} vs {}",
        with_policy.deadlines_met,
        no_policy.deadlines_met
    );
    assert!(with_policy.retries > 0, "the policy actually engaged");

    // Every tenant — originals and retries — reached a terminal state.
    for t in &with_policy.tenants {
        assert!(
            t.execution.is_some() || t.rejection.is_some(),
            "{} (attempt {}) stranded non-terminal",
            t.tenant,
            t.attempt
        );
    }
    // Per-tenant bills still sum to the fleet bill under the policy.
    let tenant_sum: f64 = with_policy
        .tenants
        .iter()
        .filter_map(|t| t.execution.as_ref())
        .map(|e| e.total_cost)
        .sum();
    assert!(
        (with_policy.fleet_cost - tenant_sum).abs() < 1e-6 * with_policy.fleet_cost.max(1.0),
        "fleet {} vs tenant sum {}",
        with_policy.fleet_cost,
        tenant_sum
    );
}

#[test]
fn faulted_churn_reruns_are_bitwise_identical() {
    // The full policy (faults + retry + gate + breaker) on the canonical
    // churn fixture, run twice from scratch: the reports must agree bit
    // for bit — serialized JSON is compared verbatim, so every float in
    // every tenant record participates.
    let run = || {
        let (requests, service) = conductor_bench::experiments::faulted_churn_fixture(32, 1.0);
        run_fleet_online(&service, &requests)
    };
    let a = run();
    let b = run();
    assert_eq!(a.fleet_cost.to_bits(), b.fleet_cost.to_bits());
    assert_eq!(a.makespan_hours.to_bits(), b.makespan_hours.to_bits());
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.dead_lettered, b.dead_lettered);
    assert_eq!(
        a.breaker_open_hours.to_bits(),
        b.breaker_open_hours.to_bits()
    );
    let ja = canonical_json(&a);
    let jb = canonical_json(&b);
    if ja != jb {
        let at = ja
            .bytes()
            .zip(jb.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or(ja.len().min(jb.len()));
        let lo = at.saturating_sub(120);
        panic!(
            "reports diverge at byte {at}:\n  a: …{}…\n  b: …{}…",
            &ja[lo..(at + 120).min(ja.len())],
            &jb[lo..(at + 120).min(jb.len())]
        );
    }
}

/// Serializes a report with the wall-clock planner timings removed: the
/// solver's `solve_time`/`model_build_time` are host metadata, not
/// simulation state, and are the only fields allowed to vary between
/// reruns. Every simulated float still participates bit for bit (the
/// renderer's shortest-round-trip float formatting is injective).
fn canonical_json(report: &conductor_core::FleetReport) -> String {
    fn strip(v: &mut serde_json::Json) {
        match v {
            serde_json::Json::Object(fields) => {
                fields.retain(|(k, _)| k != "solve_time" && k != "model_build_time");
                for (_, child) in fields.iter_mut() {
                    strip(child);
                }
            }
            serde_json::Json::Array(items) => items.iter_mut().for_each(strip),
            _ => {}
        }
    }
    let rendered = serde_json::to_string(report).unwrap();
    let mut v = serde_json::parse(&rendered).unwrap();
    strip(&mut v);
    serde_json::to_string(&v).unwrap()
}

/// The ISSUE's full-size determinism criterion (200 jobs). Expensive, so
/// ignored by default: `cargo test --release -- --ignored` runs it; CI
/// covers the 32-job variant above plus the release-mode churn smoke.
#[test]
#[ignore = "full-size fixture; run with --ignored in release mode"]
fn faulted_churn_200_jobs_reruns_are_bitwise_identical() {
    let run = || {
        let (requests, service) = conductor_bench::experiments::faulted_churn_fixture(200, 1.0);
        run_fleet_online(&service, &requests)
    };
    let a = run();
    let b = run();
    assert_eq!(canonical_json(&a), canonical_json(&b));
}
