//! Cross-crate integration tests below the planner level: the service
//! descriptions feed the resource layer, the plan drives the engine, the
//! storage layer backs the figures, and the model's estimates agree with the
//! engine's measurements within the expected tolerances.

use conductor_cloud::{Catalog, ServiceDescription};
use conductor_core::{ExecutionPlan, Goal, ModelConfig, ModelInstance, Planner, ResourcePool};
use conductor_mapreduce::engine::{DataLocation, DeploymentOptions, Engine};
use conductor_mapreduce::scheduler::{LocalityScheduler, PlanFollowingScheduler};
use conductor_mapreduce::Workload;
use conductor_storage::{FileSystemShim, InMemoryBackend, StorageClient};

/// The published-description workflow of §4.2: a pool built from JSON service
/// descriptions plans the same scenario as a pool built from the catalog.
#[test]
fn descriptions_and_catalog_produce_equivalent_pools() {
    let catalog = Catalog::aws_july_2011();
    let descriptions: Vec<ServiceDescription> = catalog
        .instances
        .iter()
        .map(ServiceDescription::from_instance)
        .chain(
            catalog
                .storages
                .iter()
                .map(ServiceDescription::from_storage),
        )
        .collect();
    // Round-trip through JSON, as a provider-published file would.
    let json = serde_json::to_string(&descriptions).unwrap();
    let parsed: Vec<ServiceDescription> = serde_json::from_str(&json).unwrap();
    let from_desc =
        ResourcePool::from_descriptions(&parsed, catalog.uplink_gb_per_hour(), 0.12, 1.0);
    let from_catalog = ResourcePool::from_catalog(&catalog, 1.0);
    assert_eq!(from_desc.compute.len(), from_catalog.compute.len());
    for c in &from_catalog.compute {
        let d = from_desc
            .compute_resource(&c.name)
            .expect("compute resource present");
        assert!((d.capacity_gbph - c.capacity_gbph).abs() < 1e-9);
        assert!((d.hourly_price - c.hourly_price).abs() < 1e-9);
    }
    assert!(from_desc.storage_resource("S3").is_some());
}

/// A plan extracted from the model can be executed by the engine and the
/// engine's completion time stays within the plan's horizon (the model is a
/// conservative fluid approximation of the task-level execution).
#[test]
fn plan_estimates_agree_with_engine_measurements() {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let spec = Workload::KMeans32Gb.spec();
    let model = ModelInstance::build(&pool, &spec, &ModelConfig::default()).unwrap();
    let solution = model.problem.solve().unwrap();
    let plan = ExecutionPlan::from_solution(&model, &solution);

    let engine = Engine::new(catalog);
    let options = plan.to_deployment_options(
        "cross-crate",
        pool.uplink_gbph,
        Some(6.0),
        &ExecutionPlan::default_location_map(),
    );
    let scheduler = PlanFollowingScheduler::cloud_only_defaults();
    let report = engine.run(&spec, &options, &scheduler).unwrap();
    assert_eq!(report.met_deadline, Some(true));
    // The measured cost is within 2x of the fluid model's estimate (round-up
    // billing and task granularity only add cost).
    assert!(report.total_cost >= plan.expected_cost * 0.8);
    assert!(report.total_cost <= plan.expected_cost * 2.0 + 5.0);
}

/// The plan-following scheduler never performs unplanned remote reads, so a
/// plan that stores everything in the cloud transfers exactly the input size
/// over the WAN; Hadoop's locality scheduler under the same deployment is
/// free to read remotely.
#[test]
fn plan_following_scheduler_bounds_wan_traffic() {
    let catalog = Catalog::aws_july_2011();
    let engine = Engine::new(catalog);
    let spec = Workload::KMeans32Gb.spec();
    let uplink = conductor_cloud::catalog::mbps_to_gb_per_hour(16.0);
    let opts = DeploymentOptions {
        upload_plan: vec![(DataLocation::InstanceDisk, 1.0)],
        deadline_hours: Some(6.0),
        ..DeploymentOptions::new("wan-bound", uplink).with_nodes("m1.large", 16, 0.0)
    };
    let planned = engine
        .run(&spec, &opts, &PlanFollowingScheduler::cloud_only_defaults())
        .unwrap();
    assert!((planned.wan_in_gb - spec.input_gb).abs() < 1e-6);

    // With no upload plan at all, the locality scheduler streams the input
    // remotely instead — same WAN volume, but unplanned.
    let remote_opts = DeploymentOptions {
        upload_plan: vec![],
        ..opts
    };
    let unplanned = engine.run(&spec, &remote_opts, &LocalityScheduler).unwrap();
    assert!(unplanned.wan_in_gb > spec.input_gb * 0.95);
}

/// The storage layer can hold a job's input: write the splits of a (scaled
/// down) job through the FS shim, then verify the chunk locations cover every
/// split with the configured replication.
#[test]
fn storage_layer_holds_job_input_with_replication() {
    let mut client = StorageClient::new();
    client.add_backend(InMemoryBackend::local_disk(1), true);
    client.add_backend(InMemoryBackend::local_disk(2), false);
    client.add_backend(InMemoryBackend::local_disk(3), false);
    client.add_backend(InMemoryBackend::object_store(10), false);
    let mut fs = FileSystemShim::with_chunk_size(client, 64 * 1024);

    // A scaled-down "input": 8 splits of 256 KiB.
    let split = vec![0xABu8; 256 * 1024];
    for i in 0..8 {
        fs.write_file(&format!("input/part-{i:04}"), &split)
            .unwrap();
    }
    for i in 0..8 {
        let locations = fs.chunk_locations(&format!("input/part-{i:04}")).unwrap();
        assert_eq!(locations.len(), 4); // 256 KiB / 64 KiB chunks
        for chunk_locs in locations {
            assert!(
                chunk_locs.len() >= 3,
                "under-replicated chunk: {chunk_locs:?}"
            );
        }
        let data = fs.read_file(&format!("input/part-{i:04}")).unwrap();
        assert_eq!(data.len(), split.len());
    }
}

/// Planning with the minimize-time goal never violates the budget and planning
/// with minimize-cost never violates the deadline horizon, across a small grid
/// of goals (consistency between the goal layer and the model layer).
#[test]
fn goals_translate_into_consistent_plans() {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let planner = Planner::new(pool);
    let spec = Workload::KMeans32Gb.spec();
    for deadline in [6.0, 8.0] {
        let (plan, _) = planner
            .plan(
                &spec,
                Goal::MinimizeCost {
                    deadline_hours: deadline,
                },
            )
            .unwrap();
        assert!(plan.expected_completion_hours <= deadline + 1e-9);
        assert_eq!(plan.len() as f64, deadline);
    }
    let (plan, _) = planner
        .plan(
            &spec,
            Goal::MinimizeTime {
                budget_usd: 100.0,
                max_hours: 10.0,
            },
        )
        .unwrap();
    assert!(plan.expected_cost <= 100.0 + 1e-6);
}
