//! The incremental `Fleet` session API: batch-vs-incremental bitwise
//! equivalence (pinned on the Poisson-churn and revocation-storm
//! fixtures), event-stream ordering and determinism, mid-run
//! submit/cancel semantics, per-tenant spot bids, and the
//! rejected-submission paths.

use conductor_bench::experiments::{churn_fixture, run_fleet_online};
use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::{
    ConductorService, FleetConfig, FleetEvent, FleetJobRequest, FleetReport, Goal, OutcomeClass,
    ResourcePool, TenantState,
};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn fast_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    }
}

/// A service over an explicit hourly price trace with the given fleet bid
/// (the revocation-storm fixture, matching `tests/revocation.rs`).
fn storm_service(prices: Vec<f64>, bid: f64, cap: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool)
        .with_solve_options(fast_options())
        .with_spot_market(SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, prices),
            0.34,
        ))
        .with_spot_bid(bid)
}

/// Cheap everywhere except a storm at hours `[storm_start, storm_end)`.
fn storm_prices(hours: usize, storm_start: usize, storm_end: usize) -> Vec<f64> {
    (0..hours)
        .map(|t| {
            if (storm_start..storm_end).contains(&t) {
                0.50
            } else {
                0.20
            }
        })
        .collect()
}

fn plain_service(cap: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool).with_solve_options(fast_options())
}

fn request(tenant: &str, arrival: f64, deadline: f64) -> FleetJobRequest {
    FleetJobRequest::new(
        tenant,
        Workload::KMeans32Gb.spec(),
        Goal::MinimizeCost {
            deadline_hours: deadline,
        },
        arrival,
    )
}

fn small_request(tenant: &str, arrival: f64, deadline: f64) -> FleetJobRequest {
    FleetJobRequest::new(
        tenant,
        Workload::KMeansScaled { input_gb: 8 }.spec(),
        Goal::MinimizeCost {
            deadline_hours: deadline,
        },
        arrival,
    )
}

/// Bitwise comparison of two fleet reports: every aggregate and every
/// per-tenant float down to the last bit.
fn assert_reports_bitwise_equal(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.fleet_cost.to_bits(), b.fleet_cost.to_bits(), "fleet cost");
    assert_eq!(
        a.makespan_hours.to_bits(),
        b.makespan_hours.to_bits(),
        "makespan"
    );
    assert_eq!(a.jobs_admitted, b.jobs_admitted);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.deadlines_met, b.deadlines_met);
    assert!(
        (a.fleet_breakdown.total() - b.fleet_breakdown.total()).abs() == 0.0,
        "breakdown totals diverge"
    );
    assert_eq!(a.tenants.len(), b.tenants.len());
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.tenant, tb.tenant);
        assert_eq!(
            ta.arrival_hours.to_bits(),
            tb.arrival_hours.to_bits(),
            "{}: arrival",
            ta.tenant
        );
        assert_eq!(ta.admitted, tb.admitted, "{}: admitted", ta.tenant);
        assert_eq!(ta.rejection, tb.rejection, "{}: rejection", ta.tenant);
        assert_eq!(ta.failure, tb.failure, "{}: failure", ta.tenant);
        assert_eq!(
            ta.replanned_at_hours, tb.replanned_at_hours,
            "{}: re-plans",
            ta.tenant
        );
        assert_eq!(
            ta.revoked_at_hours, tb.revoked_at_hours,
            "{}: revocations",
            ta.tenant
        );
        assert_eq!(
            ta.finished_at_hours.map(f64::to_bits),
            tb.finished_at_hours.map(f64::to_bits),
            "{}: finish hour",
            ta.tenant
        );
        match (&ta.execution, &tb.execution) {
            (Some(ea), Some(eb)) => {
                assert_eq!(
                    ea.total_cost.to_bits(),
                    eb.total_cost.to_bits(),
                    "{}: bill",
                    ta.tenant
                );
                assert_eq!(
                    ea.completion_hours.to_bits(),
                    eb.completion_hours.to_bits(),
                    "{}: completion",
                    ta.tenant
                );
                assert_eq!(ea.task_timeline, eb.task_timeline, "{}: tasks", ta.tenant);
                assert_eq!(
                    ea.allocation_timeline, eb.allocation_timeline,
                    "{}: allocations",
                    ta.tenant
                );
            }
            (None, None) => {}
            _ => panic!("{}: executions diverge between drivers", ta.tenant),
        }
    }
}

#[test]
fn batch_and_incremental_drivers_agree_bitwise_on_the_churn_fixture() {
    // The canonical Poisson fixture with real revocation storms: the batch
    // wrapper (submit-all-then-drain) and the online driver (step to each
    // arrival, submit then) must produce the identical fleet, bit for bit.
    let (requests, service) = churn_fixture(16, 1.0);
    let batch = service.run(&requests).expect("batch churn run");
    let online = run_fleet_online(&service, &requests);
    assert_reports_bitwise_equal(&batch, &online);
    assert!(batch.jobs_admitted > 0, "fixture admitted nothing");
}

#[test]
fn batch_and_incremental_drivers_agree_bitwise_on_the_storm_fixture() {
    // Revocation-storm fixture (mirrors tests/revocation.rs): a [2, 4)
    // blackout over one tenant, and a two-tenant storm with a rescue.
    let service = storm_service(storm_prices(48, 2, 4), 0.34, 100);
    let requests = [request("victim", 0.0, 12.0)];
    let batch = service.run(&requests).unwrap();
    let online = run_fleet_online(&service, &requests);
    assert_eq!(
        batch.tenant("victim").unwrap().revoked_at_hours,
        vec![2.0],
        "the storm must actually strike"
    );
    assert_reports_bitwise_equal(&batch, &online);

    let service = storm_service(storm_prices(72, 3, 4), 0.34, 200);
    let requests = [request("a", 0.0, 6.0), request("b", 0.0, 7.0)];
    let batch = service.run(&requests).unwrap();
    let online = run_fleet_online(&service, &requests);
    assert_reports_bitwise_equal(&batch, &online);
}

#[test]
fn batch_and_incremental_agree_across_an_idle_gap() {
    // A 30-hour dead window between arrivals: the online driver's monitor
    // chain goes quiet after the first job drains and must revive on the
    // *batch* tick grid (anchor + k·period, iterated) when the second job
    // is submitted — the scenario the grid-revival logic exists for.
    let service = plain_service(60);
    let requests = [
        small_request("early", 0.5, 5.0),
        small_request("late", 30.25, 5.0),
    ];
    let batch = service.run(&requests).unwrap();
    let online = run_fleet_online(&service, &requests);
    assert_eq!(batch.jobs_completed, 2);
    assert_reports_bitwise_equal(&batch, &online);
}

#[test]
fn event_stream_is_deterministic_and_in_clock_order() {
    // The rescue scenario emits the full vocabulary: Submitted, Admitted,
    // Planned, Revoked, Replanned, Completed. Two runs must produce the
    // identical stream, observers must see exactly the log, and at_hours
    // must never go backwards.
    let run = || {
        let service = storm_service(storm_prices(48, 2, 3), 0.34, 100);
        let mut fleet = service.open().expect("valid config");
        let observed: Arc<Mutex<Vec<FleetEvent>>> = Arc::default();
        let sink = Arc::clone(&observed);
        fleet.observe(Box::new(move |e: &FleetEvent| {
            sink.lock().unwrap().push(e.clone())
        }));
        fleet.submit(request("rescued", 0.0, 7.0)).unwrap();
        fleet.run_to_quiescence();
        let log = fleet.events().to_vec();
        assert_eq!(
            *observed.lock().unwrap(),
            log,
            "observers must see exactly the event log"
        );
        log
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "event stream must be deterministic across runs");

    for w in a.windows(2) {
        assert!(
            w[0].at_hours() <= w[1].at_hours() + 1e-9,
            "clock order violated: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    let kind = |e: &FleetEvent| -> &'static str {
        match e {
            FleetEvent::Submitted { .. } => "submitted",
            FleetEvent::Admitted { .. } => "admitted",
            FleetEvent::Planned { .. } => "planned",
            FleetEvent::Revoked { .. } => "revoked",
            FleetEvent::Replanned { .. } => "replanned",
            FleetEvent::Completed { .. } => "completed",
            _ => "other",
        }
    };
    let kinds: Vec<&str> = a.iter().map(kind).collect();
    for expected in [
        "submitted",
        "admitted",
        "planned",
        "revoked",
        "replanned",
        "completed",
    ] {
        assert!(
            kinds.contains(&expected),
            "missing `{expected}` in {kinds:?}"
        );
    }
    // Lifecycle order for the single tenant.
    let pos = |k: &str| kinds.iter().position(|x| *x == k).unwrap();
    assert!(pos("submitted") < pos("admitted"));
    assert!(pos("admitted") < pos("revoked"));
    assert!(pos("revoked") < pos("replanned"));
    assert!(pos("replanned") < pos("completed"));
}

#[test]
fn mid_run_submit_sees_live_state_and_residual_capacity() {
    let service = plain_service(60);
    let mut fleet = service.open().unwrap();
    let first = fleet.submit(small_request("first", 0.0, 5.0)).unwrap();

    // Step into the first job's run and look around.
    fleet.step_until(1.5);
    assert_eq!(fleet.now_hours(), 1.5);
    let status = fleet.status(first).unwrap();
    assert_eq!(status.state, TenantState::Running);
    let progress = status.progress.expect("running jobs expose progress");
    assert!(progress.total_tasks > 0);
    assert!(status.plan.is_some());

    // A mid-run submission with a stale arrival hour is clamped to now and
    // admitted against the residual the first job leaves.
    let second = fleet.submit(small_request("second", 0.2, 8.0)).unwrap();
    let s = fleet.status(second).unwrap();
    assert_eq!(s.state, TenantState::Queued);
    assert_eq!(s.arrival_hours, 1.5, "stale arrival clamps to now");

    fleet.run_to_quiescence();
    for id in [first, second] {
        let s = fleet.status(id).unwrap();
        assert_eq!(
            s.state,
            TenantState::Completed,
            "{}: {:?}",
            s.tenant,
            s.failure
        );
    }
    // The session's live bill equals the drained report's roll-up.
    let report = fleet.report();
    assert!((fleet.fleet_bill() - report.fleet_cost).abs() < 1e-9);
    assert_eq!(report.jobs_completed, 2);
}

#[test]
fn cancel_before_arrival_and_mid_run() {
    let service = plain_service(80);
    let mut fleet = service.open().unwrap();
    let running = fleet.submit(small_request("running", 0.0, 6.0)).unwrap();
    let queued = fleet.submit(small_request("queued", 40.0, 6.0)).unwrap();

    // Pre-arrival cancel: the submission never plans, never bills.
    assert_eq!(fleet.cancel(queued), Ok(true));
    assert_eq!(fleet.cancel(queued), Ok(false), "idempotent");
    assert_eq!(fleet.status(queued).unwrap().state, TenantState::Cancelled);

    // Mid-run cancel: abort at the current hour, keep the partial bill.
    fleet.step_until(2.0);
    assert_eq!(fleet.status(running).unwrap().state, TenantState::Running);
    assert_eq!(fleet.cancel(running), Ok(true));
    let s = fleet.status(running).unwrap();
    assert_eq!(s.state, TenantState::Cancelled);
    assert!(s.failure.as_deref().unwrap().contains("cancelled"));

    fleet.run_to_quiescence();
    let report = fleet.report();
    // The cancelled running job keeps its partial spend on the fleet bill
    // (the upload transfer alone is real money).
    let cancelled = report.tenant("running").unwrap();
    let partial = cancelled.execution.as_ref().expect("partial bill recorded");
    assert!(
        partial.total_cost > 0.0,
        "partial bill {}",
        partial.total_cost
    );
    assert!((report.fleet_cost - partial.total_cost).abs() < 1e-9);
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(
        report.tenants_by_outcome(OutcomeClass::Failed).count(),
        1,
        "mid-run cancel is a failure outcome with a bill"
    );
    assert_eq!(report.tenants_by_outcome(OutcomeClass::Rejected).count(), 1);
    // Cancellation events were emitted for both.
    let cancels = fleet
        .events()
        .iter()
        .filter(|e| matches!(e, FleetEvent::Cancelled { .. }))
        .count();
    assert_eq!(cancels, 2);
}

#[test]
fn infeasible_residual_rejects_the_submission_with_an_event() {
    // Cap so small the second arrival cannot plan inside the leftover.
    let service = plain_service(16);
    let mut fleet = service.open().unwrap();
    fleet.submit(request("first", 0.0, 6.0)).unwrap();
    let crowded = fleet.submit(request("crowded-out", 0.5, 6.0)).unwrap();
    fleet.run_to_quiescence();

    let s = fleet.status(crowded).unwrap();
    assert_eq!(s.state, TenantState::Rejected);
    assert!(s.rejection.as_deref().unwrap().contains("planning failed"));
    let rejected: Vec<_> = fleet
        .events()
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Rejected { tenant, reason, .. } => Some((*tenant, reason.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(rejected.len(), 1);
    assert_eq!(rejected[0].0, crowded);
    assert!(rejected[0].1.contains("planning failed"));
    let report = fleet.report();
    assert_eq!(report.tenants_by_outcome(OutcomeClass::Rejected).count(), 1);
    assert_eq!(
        report.tenants_by_outcome(OutcomeClass::Completed).count(),
        1
    );
}

#[test]
fn per_tenant_spot_bid_overrides_the_fleet_bid_in_revocations() {
    // The price never exceeds the 0.34 fleet bid, but a mini-spike to 0.28
    // at hours [2, 3) out-bids a tenant bidding 0.25: only that tenant is
    // struck, the default-bid tenant rides through untouched. The 7-hour
    // deadline forces both plans to field nodes from the start (the upload
    // alone takes ~4.8 h), so the spike is guaranteed to hit a working
    // cluster.
    let prices: Vec<f64> = (0..48).map(|t| if t == 2 { 0.28 } else { 0.20 }).collect();
    let service = storm_service(prices, 0.34, 200);
    let mut fleet = service.open().unwrap();
    let low = fleet
        .submit(request("low-bidder", 0.0, 7.0).with_spot_bid(0.25))
        .unwrap();
    let default = fleet.submit(request("default-bidder", 0.0, 7.0)).unwrap();
    fleet.run_to_quiescence();

    let low_status = fleet.status(low).unwrap();
    assert_eq!(
        low_status.revoked_at_hours,
        vec![2.0],
        "the per-tenant bid must trigger its own revocation"
    );
    let default_status = fleet.status(default).unwrap();
    assert!(
        default_status.revoked_at_hours.is_empty(),
        "the fleet-bid tenant must ride through the mini-spike: {:?}",
        default_status.revoked_at_hours
    );
    for id in [low, default] {
        let s = fleet.status(id).unwrap();
        assert_eq!(
            s.state,
            TenantState::Completed,
            "{}: {:?}",
            s.tenant,
            s.failure
        );
    }
    // And the batch wrapper accepts per-tenant bids identically.
    let batch = service
        .run(&[
            request("low-bidder", 0.0, 7.0).with_spot_bid(0.25),
            request("default-bidder", 0.0, 7.0),
        ])
        .unwrap();
    assert_eq!(
        batch.tenant("low-bidder").unwrap().revoked_at_hours,
        vec![2.0]
    );
    assert!(batch
        .tenant("default-bidder")
        .unwrap()
        .revoked_at_hours
        .is_empty());
}

#[test]
fn absent_per_tenant_bids_change_nothing() {
    // Explicitly passing the fleet bid per tenant is bitwise identical to
    // not passing one (the knob defaults to the fleet bid everywhere).
    let service = storm_service(storm_prices(48, 2, 4), 0.30, 100);
    let plain = [request("victim", 0.0, 12.0)];
    let with_bid = [request("victim", 0.0, 12.0).with_spot_bid(0.30)];
    let a = service.run(&plain).unwrap();
    let b = service.run(&with_bid).unwrap();
    assert_reports_bitwise_equal(&a, &b);
}

#[test]
fn invalid_submissions_and_configs_are_refused() {
    let service = plain_service(50);
    let mut fleet = service.open().unwrap();
    assert!(fleet.submit(request("nan", f64::NAN, 6.0)).is_err());
    assert!(fleet.submit(request("neg", -2.0, 6.0)).is_err());
    assert!(fleet
        .submit(request("bad-bid", 0.0, 6.0).with_spot_bid(f64::NEG_INFINITY))
        .is_err());
    assert!(fleet
        .submit(request("bad-bid", 0.0, 6.0).with_spot_bid(-0.01))
        .is_err());
    assert!(
        fleet.events().is_empty(),
        "refused submissions emit nothing"
    );

    // The batch wrapper surfaces the same validation.
    assert!(service.run(&[request("nan", f64::NAN, 6.0)]).is_err());
    assert!(service
        .run(&[request("bad", 0.0, 6.0).with_spot_bid(f64::NAN)])
        .is_err());

    // NaN monitor knobs fail loudly at open, not silently at tick time.
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let bad = FleetConfig {
        monitor_tolerance: f64::NAN,
        ..FleetConfig::default()
    };
    assert!(conductor_core::Fleet::new(catalog, pool, bad).is_err());
}
