//! Property-based tests over the core data structures and invariants:
//! the LP solver, the billing rules, the spot traces and the storage layer.

use conductor_cloud::{BillingAccount, Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_lp::{ConstraintOp, Engine, LpError, Problem, Sense, SolveOptions};
use conductor_storage::{BlockKey, FileSystemShim, InMemoryBackend, StorageClient};
use proptest::prelude::*;

/// Builds a random bounded knapsack-style MIP from flat coefficient vectors
/// (always feasible: the origin satisfies every `<=` capacity row).
fn random_mip(values: &[f64], weights: &[f64], capacities: &[f64]) -> Problem {
    let n = values.len().min(weights.len()).max(1);
    let mut p = Problem::new("rand-mip", Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| p.add_int_var(format!("x{i}"), 0.0, 4.0))
        .collect();
    p.set_objective(vars.iter().zip(values).map(|(&v, &c)| (v, c)));
    for (k, &cap) in capacities.iter().enumerate() {
        p.add_constraint(
            format!("cap{k}"),
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, weights[(i + k) % weights.len()].max(0.1))),
            ConstraintOp::Le,
            cap,
        );
    }
    p
}

/// Builds a *sparse* random MIP with the pathologies the revised engine must
/// survive: a controlled constraint density (each row touches only a random
/// subset of the variables), exact duplicated rows (degenerate ratio-test
/// ties), and variables with no upper bound (infinite span-row RHS).
///
/// The instance is feasible (the origin satisfies every `<=` row) and
/// bounded (every variable is forced into at least one capacity row with a
/// positive weight) by construction.
fn sparse_random_mip(
    values: &[f64],
    weights: &[f64],
    caps: &[f64],
    density: f64,
    density_seed: u64,
    unbounded_stride: usize,
    duplicate_row: bool,
) -> Problem {
    let n = values.len();
    let mut p = Problem::new("sparse-mip", Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| {
            // `unbounded_stride == 0` means every upper bound is finite.
            let upper = if unbounded_stride > 0 && i % unbounded_stride == 0 {
                f64::INFINITY
            } else {
                4.0
            };
            p.add_int_var(format!("x{i}"), 0.0, upper)
        })
        .collect();
    p.set_objective(vars.iter().zip(values).map(|(&v, &c)| (v, c)));
    // Deterministic xorshift so the sparsity pattern is a pure function of
    // the generated seed (reproducible across engines and reruns).
    let mut state = density_seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for (k, &cap) in caps.iter().enumerate() {
        let mut terms: Vec<(conductor_lp::VarId, f64)> = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            // Coverage guarantee: variable i always appears in row i % rows.
            let forced = i % caps.len() == k;
            let draw = (next() % 1000) as f64 / 1000.0;
            if forced || draw < density {
                terms.push((v, weights[(i + k) % weights.len()].max(0.1)));
            }
        }
        p.add_constraint(format!("cap{k}"), terms.clone(), ConstraintOp::Le, cap);
        if duplicate_row && k == 0 {
            // An exact duplicate row: every engine's ratio test faces the
            // same degenerate tie and must break it to the same optimum.
            p.add_constraint("cap0-dup", terms, ConstraintOp::Le, cap);
        }
    }
    p
}

/// Builds a doubly-bounded MIP: every integer variable carries a nonzero
/// lower bound *and* a finite upper bound (the bounded-variable engine
/// handles both implicitly, without span rows), plus `free_vars` free
/// continuous variables that only the constraint rows keep in check.
fn doubly_bounded_mip(
    values: &[f64],
    lows: &[usize],
    spans: &[usize],
    caps: &[f64],
    free_vars: usize,
) -> Problem {
    let n = values.len().min(lows.len()).min(spans.len()).max(1);
    let mut p = Problem::new("dbl-mip", Sense::Maximize);
    let mut lo_mass = 0.0;
    let ints: Vec<_> = (0..n)
        .map(|i| {
            let lo = lows[i] as f64;
            lo_mass += lo;
            p.add_int_var(format!("x{i}"), lo, lo + 1.0 + spans[i] as f64)
        })
        .collect();
    let frees: Vec<_> = (0..free_vars)
        .map(|i| p.add_var(format!("f{i}"), f64::NEG_INFINITY, f64::INFINITY))
        .collect();
    p.set_objective(
        ints.iter()
            .zip(values)
            .map(|(&v, &c)| (v, c))
            // Distinct coefficients keep the optimal free split unique.
            .chain(
                frees
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 1.5 + 0.25 * i as f64)),
            ),
    );
    for (k, &cap) in caps.iter().enumerate() {
        // Offset by the lower-bound mass so x = lower, f = 0 stays feasible.
        p.add_constraint(
            format!("cap{k}"),
            ints.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i + k) % 3) as f64))
                .chain(frees.iter().enumerate().map(|(i, &v)| (v, 1.0 + i as f64))),
            ConstraintOp::Le,
            3.0 * lo_mass + cap,
        );
    }
    // A floor per free variable: a `>=` row with negative RHS, exercising
    // the Ge path alongside the implicit column bounds.
    for (i, &f) in frees.iter().enumerate() {
        p.add_constraint(format!("floor{i}"), [(f, 1.0)], ConstraintOp::Ge, -5.0);
    }
    p
}

/// The solver configurations the cross-engine battery exercises: the seed
/// baseline, the dense engine (warm and cold), and the revised engine over
/// the full flag matrix — bounded-variables × Forrest–Tomlin × dual
/// steepest-edge, each on both the warm and the cold path.
fn engine_configs() -> Vec<(String, SolveOptions)> {
    let mut cfgs: Vec<(String, SolveOptions)> = vec![
        (
            "seed".into(),
            SolveOptions {
                engine: Engine::SeedBaseline,
                ..Default::default()
            },
        ),
        (
            "dense-warm".into(),
            SolveOptions {
                engine: Engine::DenseTableau,
                warm_start: true,
                ..Default::default()
            },
        ),
        (
            "dense-cold".into(),
            SolveOptions {
                engine: Engine::DenseTableau,
                warm_start: false,
                ..Default::default()
            },
        ),
    ];
    for warm_start in [true, false] {
        for bounded_variables in [false, true] {
            for forrest_tomlin in [false, true] {
                for dual_steepest_edge in [false, true] {
                    let label = format!(
                        "revised-{}{}{}{}",
                        if warm_start { "warm" } else { "cold" },
                        if bounded_variables { "+bv" } else { "" },
                        if forrest_tomlin { "+ft" } else { "" },
                        if dual_steepest_edge { "+dse" } else { "" },
                    );
                    cfgs.push((
                        label,
                        SolveOptions {
                            engine: Engine::RevisedSparse,
                            warm_start,
                            bounded_variables,
                            forrest_tomlin,
                            dual_steepest_edge,
                            ..Default::default()
                        },
                    ));
                }
            }
        }
    }
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any bounded-variable LP `max c·x  s.t. x_i <= u_i`, the optimum is
    /// attained at the upper bounds of the profitable variables.
    #[test]
    fn lp_box_maximization_hits_upper_bounds(
        coeffs in proptest::collection::vec(-5.0f64..5.0, 1..6),
        bounds in proptest::collection::vec(0.1f64..10.0, 1..6),
    ) {
        let n = coeffs.len().min(bounds.len());
        let mut p = Problem::new("box", Sense::Maximize);
        let vars: Vec<_> =
            (0..n).map(|i| p.add_var(format!("x{i}"), 0.0, bounds[i])).collect();
        p.set_objective(vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)));
        let sol = p.solve().unwrap();
        let expected: f64 =
            (0..n).map(|i| if coeffs[i] > 0.0 { coeffs[i] * bounds[i] } else { 0.0 }).sum();
        prop_assert!((sol.objective() - expected).abs() < 1e-6,
            "objective {} vs expected {expected}", sol.objective());
    }

    /// The solver never returns a solution that violates its own constraints.
    #[test]
    fn lp_solutions_are_feasible(
        a in proptest::collection::vec(0.1f64..4.0, 4),
        rhs in proptest::collection::vec(1.0f64..20.0, 2),
        costs in proptest::collection::vec(0.1f64..5.0, 2),
    ) {
        let mut p = Problem::new("feas", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, costs[0]), (y, costs[1])]);
        p.add_constraint("c0", [(x, a[0]), (y, a[1])], ConstraintOp::Ge, rhs[0]);
        p.add_constraint("c1", [(x, a[2]), (y, a[3])], ConstraintOp::Ge, rhs[1]);
        let sol = p.solve().unwrap();
        let (xv, yv) = (sol.value(x), sol.value(y));
        prop_assert!(xv >= -1e-9 && yv >= -1e-9);
        prop_assert!(a[0] * xv + a[1] * yv >= rhs[0] - 1e-6);
        prop_assert!(a[2] * xv + a[3] * yv >= rhs[1] - 1e-6);
    }

    /// Integer solutions are integral and never better than the LP relaxation.
    #[test]
    fn mip_respects_integrality_and_relaxation_bound(
        weights in proptest::collection::vec(1.0f64..10.0, 3),
        values in proptest::collection::vec(1.0f64..10.0, 3),
        capacity in 5.0f64..25.0,
    ) {
        let build = |integer: bool| {
            let mut p = Problem::new("knap", Sense::Maximize);
            let vars: Vec<_> = (0..3)
                .map(|i| if integer {
                    p.add_int_var(format!("x{i}"), 0.0, 3.0)
                } else {
                    p.add_var(format!("x{i}"), 0.0, 3.0)
                })
                .collect();
            p.set_objective(vars.iter().zip(&values).map(|(&v, &c)| (v, c)));
            p.add_constraint(
                "cap",
                vars.iter().zip(&weights).map(|(&v, &w)| (v, w)),
                ConstraintOp::Le,
                capacity,
            );
            (p, vars)
        };
        let (relaxed, _) = build(false);
        let lp = relaxed.solve().unwrap().objective();
        let (integral, vars) = build(true);
        let sol = integral.solve().unwrap();
        for v in vars {
            let x = sol.value(v);
            prop_assert!((x - x.round()).abs() < 1e-6, "non-integral {x}");
        }
        prop_assert!(sol.objective() <= lp + 1e-6);
    }

    /// The three engines (on both warm and cold paths) reach the same
    /// objective within the configured relative gap on randomized MIPs.
    #[test]
    fn warm_cold_and_seed_solvers_agree_on_random_mips(
        values in proptest::collection::vec(0.5f64..9.5, 2..7),
        weights in proptest::collection::vec(0.2f64..4.0, 2..7),
        capacities in proptest::collection::vec(3.0f64..20.0, 1..4),
    ) {
        let p = random_mip(&values, &weights, &capacities);
        let gap = 0.01;
        let reference = p.solve_with(&SolveOptions { relative_gap: gap, ..Default::default() }).unwrap();
        let scale = reference.objective().abs().max(1.0);
        let tol = 2.0 * gap * scale + 1e-6;
        for (label, base) in engine_configs() {
            let sol = p
                .solve_with(&SolveOptions { relative_gap: gap, ..base })
                .unwrap();
            prop_assert!((sol.objective() - reference.objective()).abs() <= tol,
                "{label} {} vs reference {}", sol.objective(), reference.objective());
            for (i, v) in sol.values().iter().enumerate() {
                prop_assert!((v - v.round()).abs() < 1e-6, "{label}: x{i} = {v} not integral");
            }
        }
    }

    /// Cross-engine equivalence battery on *sparse* MIPs (controlled
    /// density, degenerate duplicated rows, unbounded spans): seed, dense
    /// and revised — warm and cold paths both — must agree on status, on the
    /// objective to 1e-6 (all solve to a zero gap) and on the integer
    /// assignment itself.
    #[test]
    fn engine_battery_agrees_on_sparse_mips(
        values in proptest::collection::vec(0.5f64..9.5, 3..9),
        weights in proptest::collection::vec(0.2f64..4.0, 3..9),
        caps in proptest::collection::vec(4.0f64..25.0, 1..4),
        density in 0.15f64..0.95,
        density_seed in 1u64..1_000_000_000,
        unbounded_stride in 0usize..4,
        duplicate_row in any::<bool>(),
    ) {
        let n = values.len().min(weights.len());
        let p = sparse_random_mip(
            &values[..n], &weights[..n], &caps, density, density_seed,
            unbounded_stride, duplicate_row,
        );
        let mut reference: Option<(String, f64, Vec<f64>)> = None;
        for (label, base) in engine_configs() {
            let sol = p
                .solve_with(&SolveOptions { relative_gap: 0.0, ..base })
                .unwrap_or_else(|e| panic!("{label} failed: {e:?}"));
            for (i, v) in sol.values().iter().enumerate() {
                prop_assert!((v - v.round()).abs() < 1e-6, "{label}: x{i} = {v} not integral");
            }
            match &reference {
                None => reference = Some((label, sol.objective(), sol.values().to_vec())),
                Some((ref_label, obj, vals)) => {
                    prop_assert!(
                        (sol.objective() - obj).abs() <= 1e-6 * (1.0 + obj.abs()),
                        "{label} objective {} vs {ref_label} {}",
                        sol.objective(), obj
                    );
                    for (i, (a, b)) in sol.values().iter().zip(vals).enumerate() {
                        prop_assert!((a - b).abs() < 1e-4,
                            "{label} assignment x{i} = {a} vs {ref_label} {b}");
                    }
                }
            }
        }
    }

    /// The same cross-engine battery on doubly-bounded, free-variable-heavy
    /// instances — the shapes the bounded-variable mode rewrites most
    /// aggressively (every integer variable's two finite bounds become one
    /// implicit column bound; free variables stay split). Status, objective
    /// and assignment must agree across the whole flag matrix.
    #[test]
    fn engine_battery_agrees_on_doubly_bounded_mips(
        values in proptest::collection::vec(0.5f64..9.5, 2..7),
        lows in proptest::collection::vec(0usize..4, 2..7),
        spans in proptest::collection::vec(0usize..4, 2..7),
        caps in proptest::collection::vec(4.0f64..25.0, 1..4),
        free_vars in 0usize..3,
    ) {
        let p = doubly_bounded_mip(&values, &lows, &spans, &caps, free_vars);
        let mut reference: Option<(String, f64, Vec<f64>)> = None;
        for (label, base) in engine_configs() {
            let sol = p
                .solve_with(&SolveOptions { relative_gap: 0.0, ..base })
                .unwrap_or_else(|e| panic!("{label} failed: {e:?}"));
            let n_int = values.len().min(lows.len()).min(spans.len()).max(1);
            for (i, v) in sol.values().iter().take(n_int).enumerate() {
                prop_assert!((v - v.round()).abs() < 1e-6, "{label}: x{i} = {v} not integral");
            }
            match &reference {
                None => reference = Some((label, sol.objective(), sol.values().to_vec())),
                Some((ref_label, obj, vals)) => {
                    prop_assert!(
                        (sol.objective() - obj).abs() <= 1e-6 * (1.0 + obj.abs()),
                        "{label} objective {} vs {ref_label} {}",
                        sol.objective(), obj
                    );
                    for (i, (a, b)) in sol.values().iter().zip(vals).enumerate() {
                        prop_assert!((a - b).abs() < 1e-4,
                            "{label} assignment x{i} = {a} vs {ref_label} {b}");
                    }
                }
            }
        }
    }

    /// The same battery on instances that are infeasible — either at the LP
    /// level (contradictory bounds rows) or only at the MIP level (feasible
    /// relaxation, no integer point): every engine must agree on the status.
    #[test]
    fn engine_battery_agrees_on_infeasible_sparse_mips(
        n in 2usize..6,
        demand in 30.0f64..60.0,
        mip_level in any::<bool>(),
    ) {
        let mut p = Problem::new("inf-sparse", Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_int_var(format!("x{i}"), 0.0, 4.0))
            .collect();
        p.set_objective(vars.iter().map(|&v| (v, 1.0)));
        if mip_level {
            // Relaxation feasible (x0 = demand/31 after scaling) but no
            // integer point: 2·x0 = odd.
            p.add_constraint("odd", [(vars[0], 2.0)], ConstraintOp::Eq, 3.0);
        } else {
            // Max attainable lhs is 4n·1 < 24 < demand: LP-infeasible.
            p.add_constraint(
                "demand",
                vars.iter().map(|&v| (v, 1.0)),
                ConstraintOp::Ge,
                demand,
            );
        }
        for (label, base) in engine_configs() {
            let r = p.solve_with(&base);
            match r {
                Err(LpError::Infeasible) | Err(LpError::NoIncumbent) => {}
                other => panic!("{label}: expected infeasibility, got {other:?}"),
            }
        }
    }

    /// Crossed bound overrides (as produced by branching) are always reported
    /// as infeasible, never solved to a bogus optimum.
    #[test]
    fn crossed_bounds_are_infeasible(
        lo in 1.0f64..5.0,
        delta in 0.1f64..2.0,
    ) {
        let mut p = Problem::new("crossed", Sense::Minimize);
        let x = p.add_var("x", 0.0, 10.0);
        p.set_objective([(x, 1.0)]);
        let lower = vec![lo];
        let upper = vec![lo - delta];
        let r = conductor_lp::simplex::solve_relaxation(&p, &lower, &upper, 1_000);
        prop_assert!(matches!(r, Err(LpError::Infeasible)));
    }

    /// EC2-style billing: rounded-up hours are never less than the exact
    /// hours, never more than one extra hour per session, and always at
    /// least one hour.
    #[test]
    fn billing_roundup_is_bounded(durations in proptest::collection::vec(0.01f64..9.0, 1..8)) {
        let catalog = Catalog::aws_july_2011();
        let large = catalog.instance("m1.large").unwrap();
        let mut acct = BillingAccount::new(catalog.transfer);
        let mut exact = 0.0;
        for &d in &durations {
            let s = acct.start_instance(large, 10.0);
            acct.stop_instance(s, 10.0 + d);
            exact += d;
        }
        let billed = acct.instance_hours("m1.large");
        prop_assert!(billed >= exact - 1e-9);
        prop_assert!(billed >= durations.len() as f64 * 1.0 - 1e-9);
        prop_assert!(billed <= exact + durations.len() as f64 + 1e-9);
    }

    /// Spot traces stay within their documented bands for any seed/length.
    #[test]
    fn spot_traces_stay_in_band(seed in 0u64..5000, hours in 24usize..24*20) {
        let aws = SpotTrace::aws_like(seed, hours);
        prop_assert_eq!(aws.len(), hours);
        for &p in aws.prices() {
            prop_assert!((0.15..=0.45).contains(&p));
        }
        let el = SpotTrace::electricity_like(seed, hours);
        for &p in el.prices() {
            prop_assert!((0.0..0.34).contains(&p));
        }
    }

    /// Running a spot instance never charges more than bid × hours, and an
    /// uninterrupted run completes exactly the requested hours.
    #[test]
    fn spot_run_cost_is_bounded_by_bid(
        seed in 0u64..1000,
        start in 0usize..200,
        hours in 1usize..20,
        bid in 0.15f64..0.45,
    ) {
        let market = SpotMarket::new(SpotTrace::aws_like(seed, 400), 0.34);
        let outcome = market.run_instance(start, hours, bid);
        prop_assert!(outcome.cost <= bid * outcome.hours_run as f64 + 1e-9);
        prop_assert!(outcome.hours_run <= hours);
        if !outcome.out_bid {
            prop_assert_eq!(outcome.hours_run, hours);
        }
    }

    /// Files written through the storage shim always read back identically,
    /// regardless of content or chunk size (round-trip invariant).
    #[test]
    fn storage_files_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..512,
    ) {
        let mut client = StorageClient::new();
        client.add_backend(InMemoryBackend::local_disk(1), true);
        client.add_backend(InMemoryBackend::local_disk(2), false);
        client.add_backend(InMemoryBackend::object_store(3), false);
        let mut fs = FileSystemShim::with_chunk_size(client, chunk);
        fs.write_file("prop/file", &data).unwrap();
        let back = fs.read_file("prop/file").unwrap();
        prop_assert_eq!(back, data);
    }

    /// Every block written through the client keeps at least one readable
    /// replica after any single backend is removed (3-way replication over
    /// three or more backends).
    #[test]
    fn storage_survives_single_backend_loss(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        victim in 0usize..3,
    ) {
        let mut client = StorageClient::new();
        let ids = [
            client.add_backend(InMemoryBackend::local_disk(1), true),
            client.add_backend(InMemoryBackend::local_disk(2), false),
            client.add_backend(InMemoryBackend::local_disk(3), false),
        ];
        let key = BlockKey::chunk("prop", 0);
        client.write(key.clone(), payload.clone()).unwrap();
        client.remove_backend(ids[victim]);
        prop_assert_eq!(client.read(&key).unwrap(), payload);
    }
}

/// Non-proptest sanity check that the trace generators are deterministic
/// (needed for reproducible figures).
#[test]
fn trace_generation_is_deterministic() {
    for kind in [TraceKind::AwsLike, TraceKind::ElectricityLike] {
        let make = || match kind {
            TraceKind::AwsLike => SpotTrace::aws_like(99, 240),
            TraceKind::ElectricityLike => SpotTrace::electricity_like(99, 240),
        };
        assert_eq!(make(), make());
    }
}
