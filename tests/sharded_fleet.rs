//! The sharded fleet runtime end to end: N=1/N=4 equivalence with the
//! rebalancer off, bitwise reproducibility with it on (including across a
//! mid-run checkpoint/resume of one shard), cross-shard transfer
//! bookkeeping, WAL tailing, and per-tenant retry-policy overrides.

use conductor_bench::experiments::{churn_fixture, churn_requests, run_sharded_session};
use conductor_cloud::{Catalog, SpotMarket, SpotTrace};
use conductor_core::policy::FaultEvent;
use conductor_core::{
    ConductorService, FailurePolicy, FaultKind, FaultPlan, FleetEvent, FleetJobRequest,
    FleetSnapshot, Goal, OutcomeClass, ResourcePool, RetryPolicy, ShardedFleetConfig, TenantId,
    WalReader, WalWriter,
};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn fast_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    }
}

/// An *uncontended* service: the m1.large pool is left uncapped, so a
/// shard slice has the same (unbounded) capacity as the whole pool and
/// admission decisions cannot depend on which shard a tenant landed on —
/// the precondition for N=1 ≡ N=4 semantics. The spot market stays: its
/// revocation sweeps are scheduled identically on every shard clock and
/// kill nodes per *job* (by that job's bid), so they are N-invariant too.
fn uncontended_service(trace_hours: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    ConductorService::new(catalog, pool)
        .with_solve_options(fast_options())
        .with_spot_market(SpotMarket::new(SpotTrace::aws_like(17, trace_hours), 0.34))
        .with_spot_bid(0.30)
}

fn plain_service(cap: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool).with_solve_options(fast_options())
}

/// Serializes a report with the wall-clock planner timings removed (host
/// metadata, not simulation state); every simulated float participates
/// bit for bit via the renderer's injective shortest-round-trip output.
fn canonical_json(report: &conductor_core::FleetReport) -> String {
    fn strip(v: &mut serde_json::Json) {
        match v {
            serde_json::Json::Object(fields) => {
                fields.retain(|(k, _)| k != "solve_time" && k != "model_build_time");
                for (_, child) in fields.iter_mut() {
                    strip(child);
                }
            }
            serde_json::Json::Array(items) => items.iter_mut().for_each(strip),
            _ => {}
        }
    }
    let rendered = serde_json::to_string(report).unwrap();
    let mut v = serde_json::parse(&rendered).unwrap();
    strip(&mut v);
    serde_json::to_string(&v).unwrap()
}

/// [`canonical_json`] with the `plan` and `planning` payloads removed as
/// well. Branch & bound under a relative gap may certify *different
/// equally-priced* plans depending on the warm-start history of the
/// solver context that ran the solve — and a shard's context sees only
/// its own tenants' solves, so its history differs from the unsharded
/// fleet's. What sharding must preserve bit for bit is the fleet
/// *semantics*: admissions, rejections, executions (node schedules, task
/// timelines), bills, retry chains and event hours — everything else in
/// the report.
fn canonical_semantics_json(report: &conductor_core::FleetReport) -> String {
    fn strip(v: &mut serde_json::Json) {
        match v {
            serde_json::Json::Object(fields) => {
                fields.retain(|(k, _)| k != "plan" && k != "planning");
                for (_, child) in fields.iter_mut() {
                    strip(child);
                }
            }
            serde_json::Json::Array(items) => items.iter_mut().for_each(strip),
            _ => {}
        }
    }
    let rendered = serde_json::to_string(report).unwrap();
    let mut v = serde_json::parse(&rendered).unwrap();
    strip(&mut v);
    serde_json::to_string(&v).unwrap()
}

fn temp_wal(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "conductor-sharded-{tag}-{}-{n}.wal",
        std::process::id()
    ))
}

// ---------------------------------------------------------------------------
// N=1 vs N=4 equivalence (rebalancer off).
// ---------------------------------------------------------------------------

/// With the rebalancer off and an uncontended pool, sharding is pure
/// bookkeeping: the same seeded churn workload produces the identical
/// merged report at N=1 and N=4 — same per-tenant outcomes, same bills,
/// bit for bit.
#[test]
fn n1_and_n4_merged_reports_match_without_rebalancer() {
    let requests = churn_requests(20_260_729, 12, 0.5);
    let horizon = requests.last().unwrap().arrival_hours + 200.0;
    let service = uncontended_service(horizon.ceil() as usize);

    let one = run_sharded_session(&service, 1, None, &requests);
    let four = run_sharded_session(&service, 4, None, &requests);

    let report_one = one.report();
    let report_four = four.report();
    assert_eq!(report_one.tenants.len(), requests.len());
    assert_eq!(
        canonical_semantics_json(&report_one),
        canonical_semantics_json(&report_four)
    );
    assert!(
        (one.fleet_bill() - four.fleet_bill()).abs() < 1e-9,
        "bills diverged: {} vs {}",
        one.fleet_bill(),
        four.fleet_bill()
    );
    assert!(four.transfers().is_empty(), "rebalancer was off");

    // The four-shard run actually spread the tenants.
    let used: std::collections::BTreeSet<usize> = (0..requests.len())
        .filter_map(|i| four.shard_of(TenantId(i)))
        .collect();
    assert!(used.len() > 1, "hash router left every tenant on one shard");
}

// ---------------------------------------------------------------------------
// Rebalancer determinism.
// ---------------------------------------------------------------------------

/// A deliberately terrible placement policy: every tenant lands on shard
/// 0. (The default FNV router spreads the `tenant-NNN` fixture names
/// perfectly evenly — 4/4/4/4 at 16 jobs — which never builds the depth
/// spread the rebalancer reacts to.) With this router the rebalancer has
/// to do all the spreading itself, which is exactly what these tests
/// want to observe.
struct PileUpRouter;

impl conductor_core::ShardRouter for PileUpRouter {
    fn route(&self, _request: &FleetJobRequest, _shards: usize) -> usize {
        0
    }
}

/// Batch-style submission (every arrival pending up front) over the
/// capped churn service, with every tenant piled onto shard 0, so
/// per-shard queue depths differ maximally and the rebalancer has real
/// work. The run must be bitwise-reproducible: identical merged reports,
/// transfer logs and merged event streams across repeats — parallel
/// stepping included.
fn rebalanced_run(jobs: usize) -> conductor_core::ShardedFleet {
    let (requests, service) = churn_fixture(jobs, 0.5);
    let mut fleet = conductor_core::ShardedFleet::with_router(
        service.catalog().clone(),
        service.pool().clone(),
        service.config().clone(),
        ShardedFleetConfig {
            shards: 4,
            rebalance_period_hours: Some(1.0),
        },
        Box::new(PileUpRouter),
    )
    .unwrap();
    for request in &requests {
        fleet.submit(request.clone()).unwrap();
    }
    fleet.run_to_quiescence();
    fleet
}

#[test]
fn rebalanced_runs_are_bitwise_identical() {
    let a = rebalanced_run(16);
    let b = rebalanced_run(16);

    assert!(
        !a.transfers().is_empty(),
        "fixture imbalance should trigger at least one migration"
    );
    assert_eq!(a.transfers(), b.transfers());
    assert_eq!(canonical_json(&a.report()), canonical_json(&b.report()));
    assert_eq!(a.merged_events(), b.merged_events());
    assert_eq!(a.fleet_bill().to_bits(), b.fleet_bill().to_bits());
}

#[test]
fn transfers_update_placement_and_keep_global_ids_valid() {
    let fleet = rebalanced_run(16);
    // Submission order is the global id order, and churn tenants have
    // unique names — map names back to globals.
    let requests = churn_requests(20_260_729, 16, 0.5);
    for transfer in fleet.transfers() {
        assert_ne!(transfer.from_shard, transfer.to_shard);
        assert_eq!(transfer.billed_so_far, 0.0, "queued jobs have no spend");
        let global = requests
            .iter()
            .position(|r| r.tenant == transfer.tenant)
            .expect("transferred tenant came from the fixture");
        // The global id still resolves after the migration …
        assert!(fleet.status(TenantId(global)).is_some());
        // … and the source shard logged the departure.
        let source_events = fleet.shard(transfer.from_shard).unwrap().events();
        assert!(source_events
            .iter()
            .any(|e| matches!(e, FleetEvent::MigratedOut { .. })));
    }
    // The final placement agrees with the tenant's *last* transfer
    // (earlier ones may be superseded by later migrations).
    if let Some(transfer) = fleet.transfers().last() {
        let global = requests
            .iter()
            .position(|r| r.tenant == transfer.tenant)
            .unwrap();
        assert_eq!(fleet.shard_of(TenantId(global)), Some(transfer.to_shard));
    }
    // Every tenant landed somewhere and the merged report covers all of
    // them exactly once per attempt chain.
    let report = fleet.report();
    let originals = report.tenants.iter().filter(|t| t.attempt == 0).count();
    assert_eq!(
        originals, 16,
        "each tenant appears exactly once at attempt 0"
    );
}

// ---------------------------------------------------------------------------
// Mid-run checkpoint/resume of one shard.
// ---------------------------------------------------------------------------

#[test]
fn mid_run_shard_checkpoint_resume_is_bitwise_identical() {
    let (requests, service) = churn_fixture(12, 0.5);
    let drive = |resume: bool| {
        let mut fleet = conductor_core::ShardedFleet::with_router(
            service.catalog().clone(),
            service.pool().clone(),
            service.config().clone(),
            ShardedFleetConfig {
                shards: 4,
                rebalance_period_hours: Some(1.0),
            },
            Box::new(PileUpRouter),
        )
        .unwrap();
        for request in &requests {
            fleet.submit(request.clone()).unwrap();
        }
        fleet.step_until(2.5);
        if resume {
            // Suspend shard 1 through the full JSON codec and swap the
            // restored instance in, mid-run. The rest of the fleet keeps
            // its live state.
            let snapshot = fleet.checkpoint_shard(1).unwrap();
            let snapshot = FleetSnapshot::from_json(&snapshot.to_json()).unwrap();
            fleet.restore_shard(1, &snapshot).unwrap();
        }
        fleet.run_to_quiescence();
        fleet
    };

    let straight = drive(false);
    let resumed = drive(true);
    assert_eq!(
        canonical_json(&straight.report()),
        canonical_json(&resumed.report())
    );
    assert_eq!(straight.transfers(), resumed.transfers());
    assert_eq!(straight.merged_events(), resumed.merged_events());
}

// ---------------------------------------------------------------------------
// Merged event stream ordering.
// ---------------------------------------------------------------------------

#[test]
fn merged_events_are_ordered_by_time_then_shard() {
    let fleet = rebalanced_run(12);
    let merged = fleet.merged_events();
    assert!(!merged.is_empty());
    for w in merged.windows(2) {
        let (s0, e0) = &w[0];
        let (s1, e1) = &w[1];
        assert!(
            e0.at_hours() < e1.at_hours() || (e0.at_hours() == e1.at_hours() && s0 <= s1),
            "merged stream out of order: ({s0}, {}) then ({s1}, {})",
            e0.at_hours(),
            e1.at_hours()
        );
    }
    // Nothing was lost in the merge.
    let per_shard: usize = (0..fleet.shard_count())
        .map(|s| fleet.shard(s).unwrap().events().len())
        .sum();
    assert_eq!(merged.len(), per_shard);
}

// ---------------------------------------------------------------------------
// WAL tailing.
// ---------------------------------------------------------------------------

#[test]
fn wal_tails_events_as_they_are_emitted() {
    let path = temp_wal("tail");
    let service = plain_service(200);
    let mut fleet = service.open().unwrap();
    fleet.attach_wal(WalWriter::create(&path).unwrap());
    fleet
        .submit(FleetJobRequest::new(
            "tailed",
            Workload::KMeansScaled { input_gb: 8 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 8.0,
            },
            0.0,
        ))
        .unwrap();
    fleet.step_until(0.5);

    // Mid-run — before quiescence — the log already holds every emitted
    // event: tailing, not a post-hoc dump.
    let mid = WalReader::read(&path).unwrap();
    assert!(!mid.torn);
    assert!(!mid.events.is_empty());
    assert_eq!(mid.events.as_slice(), fleet.events());

    fleet.run_to_quiescence();
    let done = WalReader::read(&path).unwrap();
    assert!(!done.torn);
    assert_eq!(done.events.as_slice(), fleet.events());
    assert!(fleet.wal_error().is_none());
    std::fs::remove_file(&path).ok();
}

#[test]
fn tailed_wal_keeps_the_torn_tail_recovery_contract() {
    let path = temp_wal("torn");
    let service = plain_service(200);
    let mut fleet = service.open().unwrap();
    fleet.attach_wal(WalWriter::create(&path).unwrap());
    fleet
        .submit(FleetJobRequest::new(
            "torn",
            Workload::KMeansScaled { input_gb: 8 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 8.0,
            },
            0.0,
        ))
        .unwrap();
    fleet.run_to_quiescence();
    let committed = fleet.events().len();

    // Simulate a crash mid-append: trailing bytes with no newline.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"{\"Completed\":{\"tenant\":9,\"at_ho")
        .unwrap();
    drop(f);

    let readout = WalReader::read(&path).unwrap();
    assert!(readout.torn);
    assert_eq!(readout.events.len(), committed);

    let recovered = WalReader::recover(&path).unwrap();
    assert_eq!(recovered.len(), committed);
    let clean = WalReader::read(&path).unwrap();
    assert!(!clean.torn, "recover truncates the torn tail");
    assert_eq!(clean.events.as_slice(), fleet.events());
    std::fs::remove_file(&path).ok();
}

#[test]
fn each_shard_tails_its_own_wal() {
    let requests = churn_requests(20_260_729, 8, 0.5);
    let horizon = requests.last().unwrap().arrival_hours + 200.0;
    let service = uncontended_service(horizon.ceil() as usize);
    let mut fleet = service
        .open_sharded(ShardedFleetConfig {
            shards: 2,
            rebalance_period_hours: None,
        })
        .unwrap();
    let paths: Vec<_> = (0..2).map(|s| temp_wal(&format!("shard{s}"))).collect();
    for (s, path) in paths.iter().enumerate() {
        fleet
            .attach_wal(s, WalWriter::create(path).unwrap())
            .unwrap();
    }
    for request in &requests {
        fleet.step_until(request.arrival_hours);
        fleet.submit(request.clone()).unwrap();
    }
    fleet.run_to_quiescence();

    for (s, path) in paths.iter().enumerate() {
        let readout = WalReader::read(path).unwrap();
        assert!(!readout.torn);
        assert_eq!(
            readout.events.as_slice(),
            fleet.shard(s).unwrap().events(),
            "shard {s} log must hold exactly its own events"
        );
        assert!(fleet.shard(s).unwrap().wal_error().is_none());
        std::fs::remove_file(path).ok();
    }
}

// ---------------------------------------------------------------------------
// Per-tenant retry-policy overrides.
// ---------------------------------------------------------------------------

/// An explicit fault plan: task failures at the given fleet hours, always
/// hitting the first running job in pid order (salt 0).
fn task_failures_at(hours: &[f64]) -> FaultPlan {
    FaultPlan {
        events: hours
            .iter()
            .map(|&at_hours| FaultEvent {
                at_hours,
                kind: FaultKind::TaskFailure,
                salt: 0,
            })
            .collect(),
    }
}

fn faulted_request(tenant: &str) -> FleetJobRequest {
    FleetJobRequest::new(
        tenant,
        Workload::KMeansScaled { input_gb: 8 }.spec(),
        Goal::MinimizeCost {
            deadline_hours: 8.0,
        },
        0.0,
    )
}

/// The fleet has *no* retry policy, but the tenant carries one: its
/// faulted attempt retries on the override's budget and completes, where
/// an override-free tenant on the same fleet just fails.
#[test]
fn retry_override_grants_retries_the_fleet_policy_lacks() {
    let svc = plain_service(200).with_failure_policy(FailurePolicy {
        fault_plan: Some(task_failures_at(&[1.0])),
        retry: None,
        ..FailurePolicy::default()
    });

    // Control: no override, no retry — the fault is terminal.
    let mut control = svc.open().unwrap();
    control.submit(faulted_request("control")).unwrap();
    control.run_to_quiescence();
    let report = control.report();
    assert_eq!(report.tenants.len(), 1);
    assert_eq!(report.retries, 0);
    assert_eq!(report.tenants[0].outcome_class(), OutcomeClass::Failed);

    // Override: the tenant brings its own budget and recovers.
    let mut fleet = svc.open().unwrap();
    fleet
        .submit(faulted_request("resilient").with_retry_policy(RetryPolicy::default()))
        .unwrap();
    fleet.run_to_quiescence();
    let report = fleet.report();
    assert_eq!(report.tenants.len(), 2, "original + one retry");
    assert_eq!(report.retries, 1);
    assert_eq!(report.tenants[0].outcome_class(), OutcomeClass::Failed);
    assert_eq!(report.tenants[1].outcome_class(), OutcomeClass::Completed);
    // The retry inherited the override (the cloned request carries it).
    assert!(fleet
        .events()
        .iter()
        .any(|e| matches!(e, FleetEvent::Retried { attempt: 1, .. })));
}

/// The mirror image: the fleet retries generously, but the tenant pins
/// `max_retries: 0` — its first failure exhausts the (empty) budget and
/// dead-letters immediately, while a default tenant on the same faulted
/// fleet would have retried.
#[test]
fn retry_override_can_exhaust_straight_into_the_dead_letter_queue() {
    let svc = plain_service(200).with_failure_policy(FailurePolicy {
        fault_plan: Some(task_failures_at(&[1.0])),
        retry: Some(RetryPolicy::default()),
        ..FailurePolicy::default()
    });

    let mut fleet = svc.open().unwrap();
    fleet
        .submit(faulted_request("pinned").with_retry_policy(RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }))
        .unwrap();
    fleet.run_to_quiescence();
    let report = fleet.report();
    assert_eq!(report.tenants.len(), 1, "no retry attempts were issued");
    assert_eq!(report.retries, 0);
    assert_eq!(report.dead_lettered, 1);
    assert_eq!(fleet.dead_letters().len(), 1);
    assert_eq!(fleet.dead_letters()[0].attempts, 1);
    assert_eq!(fleet.dead_letters()[0].tenant_name, "pinned");

    // Same fleet, no override: the fleet-wide policy retries and the
    // second attempt completes fault-free.
    let mut default_fleet = svc.open().unwrap();
    default_fleet.submit(faulted_request("default")).unwrap();
    default_fleet.run_to_quiescence();
    let report = default_fleet.report();
    assert_eq!(report.retries, 1);
    assert_eq!(report.dead_lettered, 0);
    assert_eq!(report.tenants[1].outcome_class(), OutcomeClass::Completed);
}

/// Overrides exhaust into the DLQ on their *own* budget: one retry, two
/// faults — the chain dies at attempt 1 where the fleet default (two
/// retries) would have survived.
#[test]
fn retry_override_budget_bounds_the_chain() {
    let svc = plain_service(200).with_failure_policy(FailurePolicy {
        fault_plan: Some(task_failures_at(&[1.0, 2.5, 4.5])),
        retry: None,
        ..FailurePolicy::default()
    });
    let mut fleet = svc.open().unwrap();
    fleet
        .submit(faulted_request("bounded").with_retry_policy(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        }))
        .unwrap();
    fleet.run_to_quiescence();
    let report = fleet.report();
    assert_eq!(report.tenants.len(), 2, "original + exactly one retry");
    assert_eq!(report.retries, 1);
    assert_eq!(report.dead_lettered, 1);
    assert_eq!(fleet.dead_letters()[0].attempts, 2);
}

/// Invalid overrides are rejected at submit time, before any state
/// changes.
#[test]
fn invalid_retry_override_is_rejected_at_submit() {
    let svc = plain_service(200);
    let mut fleet = svc.open().unwrap();
    let bad = faulted_request("bad").with_retry_policy(RetryPolicy {
        backoff_factor: 0.5, // < 1 shrinks the backoff: rejected
        ..RetryPolicy::default()
    });
    assert!(fleet.submit(bad).is_err());
    assert!(fleet.events().is_empty(), "nothing was recorded");
}
