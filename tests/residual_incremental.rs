//! The incremental residual-capacity index against the full recompute it
//! replaced.
//!
//! `Fleet::residual_pool` is now served by a maintained commitment index
//! (`ResidualIndex`): per-job schedule views cached by `(schedule_epoch,
//! start)` and merged with an event sweep, instead of re-deriving every
//! active job's node commitments from scratch on each admission,
//! re-plan, monitor probe and mid-run submission. In debug builds every
//! call *cross-checks the index bitwise* against the retained
//! O(active² · steps) recompute via `debug_assert_eq!` — so driving the
//! fixtures below through admission, monitor re-planning, revocation
//! recovery (schedule shifts), straggler splices and mid-run
//! cancellation IS the equivalence property: any divergence between the
//! incremental and recomputed peaks panics the run. These tests pin that
//! the fixtures traverse every schedule-epoch mutation site, and that
//! the trajectories they produce stay deterministic.

use conductor_bench::experiments::{churn_fixture, run_fleet_online};
use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::{ConductorService, FleetJobRequest, FleetReport, Goal, ResourcePool};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::time::Duration;

fn fast_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    }
}

/// A storm-bearing service over an explicit price trace (mirrors the
/// revocation-storm fixture in `tests/fleet_api.rs`).
fn storm_service(prices: Vec<f64>, bid: f64, cap: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool)
        .with_solve_options(fast_options())
        .with_spot_market(SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, prices),
            0.34,
        ))
        .with_spot_bid(bid)
}

fn request(tenant: &str, arrival: f64, deadline: f64) -> FleetJobRequest {
    FleetJobRequest::new(
        tenant,
        Workload::KMeans32Gb.spec(),
        Goal::MinimizeCost {
            deadline_hours: deadline,
        },
        arrival,
    )
}

fn assert_same_fleet(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.fleet_cost.to_bits(), b.fleet_cost.to_bits());
    assert_eq!(a.makespan_hours.to_bits(), b.makespan_hours.to_bits());
    assert_eq!(a.jobs_admitted, b.jobs_admitted);
    assert_eq!(a.deadlines_met, b.deadlines_met);
}

/// Poisson churn: arrivals keyed off live residual capacity while other
/// tenants run, finish, get revoked by storms and re-plan — every
/// admission's residual goes through the index (and, in debug, through
/// the bitwise cross-check against the recompute).
#[test]
fn incremental_residual_matches_recompute_across_poisson_churn() {
    let (requests, service) = churn_fixture(16, 1.0);
    let first = run_fleet_online(&service, &requests);
    assert!(first.jobs_admitted > 0, "fixture admitted nothing");
    let second = run_fleet_online(&service, &requests);
    assert_same_fleet(&first, &second);
}

/// Revocation storm plus a mid-run cancellation: the storm shifts the
/// victim's remaining node schedule (a schedule-epoch bump via the
/// recovery path), the re-plan splices a new schedule (another bump),
/// and the cancel drops a live commitment from the index — all while a
/// later arrival plans against the post-storm residual.
#[test]
fn incremental_residual_survives_storms_replans_and_cancels() {
    let run = || {
        let prices: Vec<f64> = (0..48)
            .map(|t| if (2..4).contains(&t) { 0.5 } else { 0.2 })
            .collect();
        // Cap 100 and a 12 h deadline force the lone victim to rent
        // through the blackout (the pinned fleet_api storm scenario), so
        // the revocation genuinely fires.
        let service = storm_service(prices, 0.34, 100);
        let mut fleet = service.open().expect("storm fixture is valid");
        fleet.submit(request("victim", 0.0, 12.0)).unwrap();
        // Step past the [2, 4) blackout: the victim's remaining schedule
        // has been recovery-shifted and re-planned (two epoch bumps).
        fleet.step_until(5.0);
        // Two newcomers plan against the post-storm residual the index
        // now serves, then one is cancelled mid-run: its commitments must
        // leave the index before the next admission or monitor probe.
        let doomed = fleet.submit(request("doomed", 5.0, 20.0)).unwrap();
        fleet.submit(request("latecomer", 5.5, 22.0)).unwrap();
        fleet.step_until(7.0);
        let _ = fleet.cancel(doomed);
        fleet.run_to_quiescence();
        let report = fleet.report();
        assert_eq!(
            report.tenant("victim").unwrap().revoked_at_hours,
            vec![2.0],
            "the storm must actually strike"
        );
        report
    };
    let first = run();
    let second = run();
    assert_same_fleet(&first, &second);
    assert!(first.tenant("latecomer").unwrap().admitted);
}
