//! Admission plan cache: shadow-mode equivalence and fast-path pins on
//! the canonical Poisson-churn fixture.
//!
//! Two complementary properties:
//!
//! 1. **Shadow mode** probes the cache at every admission but lets the
//!    full solve keep deciding, routing the probe's root relaxation
//!    through a *separate* solve context — so the session trajectory must
//!    stay bitwise identical to a cache-off run, while the recorded
//!    probe-vs-solve comparisons bound how a would-be hit's re-priced
//!    cost relates to the fresh solve it would replace. This is the
//!    rigorous reading of "cache-on admits the same tenants at
//!    equal-or-better cost": the comparison happens at *identical* fleet
//!    state, per decision, instead of across two closed-loop runs whose
//!    trajectories diverge the moment one reused shape changes the
//!    residual every later arrival plans against.
//!
//! 2. **Cache-on** runs take the fast path for real: every arrival is
//!    probed, certified hits skip branch & bound entirely, and the fleet
//!    ends no worse off than the cold path — at least as many admissions
//!    and at least as many met deadlines (cheaper certified shapes leave
//!    more residual for later arrivals) — and reruns stay deterministic.

use conductor_bench::experiments::{churn_fixture, run_fleet_online};
use conductor_core::FleetReport;

/// The solver's relative MIP gap in the churn fixture — the indifference
/// band of the cache certificate.
const GAP: f64 = 0.02;

fn bitwise_equal(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.fleet_cost.to_bits(), b.fleet_cost.to_bits(), "fleet cost");
    assert_eq!(a.makespan_hours.to_bits(), b.makespan_hours.to_bits());
    assert_eq!(a.jobs_admitted, b.jobs_admitted);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.deadlines_met, b.deadlines_met);
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.admitted, tb.admitted, "{}: admitted", ta.tenant);
        match (&ta.plan, &tb.plan) {
            (Some(pa), Some(pb)) => assert_eq!(
                pa.expected_cost.to_bits(),
                pb.expected_cost.to_bits(),
                "{}: plan cost",
                ta.tenant
            ),
            (None, None) => {}
            _ => panic!("{}: plans diverge", ta.tenant),
        }
        match (&ta.execution, &tb.execution) {
            (Some(ea), Some(eb)) => assert_eq!(
                ea.total_cost.to_bits(),
                eb.total_cost.to_bits(),
                "{}: bill",
                ta.tenant
            ),
            (None, None) => {}
            _ => panic!("{}: executions diverge", ta.tenant),
        }
    }
}

#[test]
fn shadow_probes_never_perturb_the_trajectory_and_hits_track_fresh_solves() {
    let (requests, service) = churn_fixture(48, 1.0);
    let off = run_fleet_online(&service, &requests);
    // Cache off by default: the counters must stay silent.
    assert_eq!(off.plan_cache_hits, 0);
    assert_eq!(off.plan_cache_misses, 0);

    let mut fleet = service
        .clone()
        .with_plan_cache_shadow(true)
        .open()
        .expect("fixture config is valid");
    for r in &requests {
        fleet.step_until(r.arrival_hours);
        fleet.submit(r.clone()).expect("fixture requests are valid");
    }
    fleet.run_to_quiescence();
    let shadow = fleet.report();

    // The pin: probing (and recording) changes nothing the fleet does.
    bitwise_equal(&off, &shadow);

    // Every arrival was probed; a healthy share would have hit.
    assert_eq!(shadow.plan_cache_hits + shadow.plan_cache_misses, 48);
    assert!(
        shadow.plan_cache_hits >= 10,
        "only {} would-be hits on the 48-job fixture",
        shadow.plan_cache_hits
    );

    // Per-decision quality of the would-be hits, measured at identical
    // fleet state against the very solve each would have replaced.
    // (`checked < hits` is expected: some hits land where the fresh solve
    // rejects outright — the cache certifying a feasible shape where the
    // node-capped search found nothing is a win, not a comparison.)
    let (checked, worse, max_excess, mean_excess) = fleet.plan_cache_shadow_stats();
    assert!(checked >= 10, "only {checked} probe-vs-solve comparisons");
    assert!(
        worse * 4 <= checked,
        "{worse} of {checked} hits re-priced worse than fresh by more than the gap"
    );
    assert!(
        mean_excess <= GAP,
        "hits are worse than fresh on average: mean excess {mean_excess:.4}"
    );
    assert!(
        max_excess <= 0.15,
        "certificate slack regressed: worst hit {max_excess:.4} over fresh"
    );
}

#[test]
fn cache_on_fast_path_admits_no_worse_than_cold_and_stays_deterministic() {
    let (requests, service) = churn_fixture(32, 1.0);
    let off = run_fleet_online(&service, &requests);
    let cached_service = service.with_plan_cache(true);
    let on = run_fleet_online(&cached_service, &requests);

    // The fast path actually fires, and every arrival went through it.
    assert_eq!(on.plan_cache_hits + on.plan_cache_misses, 32);
    assert!(
        on.plan_cache_hits >= 5,
        "only {} certified hits on the 32-job fixture",
        on.plan_cache_hits
    );

    // Reusing certified shapes must not cost the fleet service quality:
    // as many tenants admitted and as many deadlines met as cold solves
    // delivered (in practice more — cheaper shapes leave more residual).
    assert!(
        on.jobs_admitted >= off.jobs_admitted,
        "cache-on admitted {} vs cold {}",
        on.jobs_admitted,
        off.jobs_admitted
    );
    assert!(
        on.deadlines_met >= off.deadlines_met,
        "cache-on met {} deadlines vs cold {}",
        on.deadlines_met,
        off.deadlines_met
    );
    // Every admitted tenant carries a finite, certified plan cost.
    for t in &on.tenants {
        if let Some(plan) = &t.plan {
            assert!(
                plan.expected_cost.is_finite() && plan.expected_cost > 0.0,
                "{}: cached plan cost {}",
                t.tenant,
                plan.expected_cost
            );
        }
    }

    // The cache is deterministic: a second cache-on run is bitwise equal.
    let again = run_fleet_online(&cached_service, &requests);
    bitwise_equal(&on, &again);
    assert_eq!(on.plan_cache_hits, again.plan_cache_hits);
    assert_eq!(on.plan_cache_misses, again.plan_cache_misses);
}
