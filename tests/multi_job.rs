//! Fleet-level integration: N concurrent jobs with staggered arrivals on
//! one shared clock, spot market and capacity pool (the multi-tenant
//! scenario the `ConductorService` tentpole exists for).
//!
//! The contention fixture itself lives in
//! `conductor_bench::experiments` — the `fleet_contention` binary, the
//! criterion `fleet` bench and these tests all measure the same fleet:
//! four tenants with mixed deadlines arriving half-hourly, one shared
//! electricity-like spot trace, and a fleet-wide 90-node m1.large cap
//! (the shared spot trough herds every tenant into the same cheap hours,
//! so the cap genuinely binds across tenants, not per job).

use conductor_bench::experiments::{fleet_contention_requests, fleet_contention_service};
use conductor_cloud::Catalog;
use conductor_core::{ConductorService, FleetJobRequest, FleetReport, Goal, ResourcePool};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::time::Duration;

fn fast_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    }
}

fn run_fleet(seed: u64) -> FleetReport {
    fleet_contention_service(seed)
        .run(&fleet_contention_requests())
        .expect("fleet run succeeds")
}

#[test]
fn four_tenant_contention_meets_every_deadline_and_bills_add_up() {
    let report = run_fleet(17);

    // All four jobs are admitted and complete.
    assert_eq!(report.jobs_admitted, 4, "{:#?}", report.tenants);
    assert_eq!(report.jobs_completed, 4);

    // Every tenant's deadline verdict: all four plans fit under the shared
    // cap and finish in time.
    for tenant in ["tenant-a", "tenant-b", "tenant-c", "tenant-d"] {
        let outcome = report.tenant(tenant).unwrap();
        let exec = outcome
            .execution
            .as_ref()
            .unwrap_or_else(|| panic!("{tenant} did not finish: {outcome:?}"));
        assert_eq!(
            exec.met_deadline,
            Some(true),
            "{tenant} missed its deadline: completion {:.2} h",
            exec.completion_hours
        );
    }
    assert_eq!(report.deadlines_met, 4);

    // Per-tenant bills sum to the fleet bill, and the category roll-up is
    // consistent with the total.
    let tenant_sum: f64 = report
        .tenants
        .iter()
        .filter_map(|t| t.execution.as_ref())
        .map(|e| e.total_cost)
        .sum();
    assert!(
        (report.fleet_cost - tenant_sum).abs() < 1e-9,
        "fleet {} vs tenant sum {}",
        report.fleet_cost,
        tenant_sum
    );
    assert!((report.fleet_breakdown.total() - report.fleet_cost).abs() < 1e-9);

    // The shared spot market shows up as a discount on every tenant's
    // compute bill: cheaper than renting the same node-hours on demand.
    for t in &report.tenants {
        let exec = t.execution.as_ref().unwrap();
        assert!(exec.total_cost > 0.0);
    }

    // Jobs genuinely overlapped (the fleet finished long before the sum of
    // the individual completion times).
    let serial_hours: f64 = report
        .tenants
        .iter()
        .filter_map(|t| t.execution.as_ref())
        .map(|e| e.completion_hours)
        .sum();
    assert!(
        report.makespan_hours < serial_hours,
        "no concurrency: makespan {} vs serial {}",
        report.makespan_hours,
        serial_hours
    );
}

#[test]
fn fleet_runs_are_deterministic_for_the_same_seed() {
    let a = run_fleet(17);
    let b = run_fleet(17);
    assert_eq!(a.fleet_cost.to_bits(), b.fleet_cost.to_bits());
    assert_eq!(a.makespan_hours.to_bits(), b.makespan_hours.to_bits());
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.tenant, tb.tenant);
        assert_eq!(ta.admitted, tb.admitted);
        assert_eq!(ta.replanned_at_hours, tb.replanned_at_hours);
        match (&ta.execution, &tb.execution) {
            (Some(ea), Some(eb)) => {
                assert_eq!(ea.total_cost.to_bits(), eb.total_cost.to_bits());
                assert_eq!(ea.completion_hours.to_bits(), eb.completion_hours.to_bits());
                assert_eq!(ea.task_timeline, eb.task_timeline);
            }
            (None, None) => {}
            _ => panic!("{}: executions diverge across runs", ta.tenant),
        }
    }

    // A different trace seed changes the market and therefore the bills
    // (same catalog, same jobs — only the shared market state moved).
    let c = run_fleet(18);
    assert!(
        (a.fleet_cost - c.fleet_cost).abs() > 1e-9,
        "spot trace seed had no effect on the fleet bill"
    );
}

#[test]
fn residual_planning_under_a_tight_cap_still_serves_later_arrivals() {
    // With a cap just above one job's peak, later arrivals must plan inside
    // what is left; the fleet stays functional (admitting what fits,
    // rejecting what cannot possibly plan).
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 30);
    let service = ConductorService::new(catalog, pool).with_solve_options(fast_options());
    let report = service
        .run(&[
            FleetJobRequest::new(
                "early",
                Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 6.0,
                },
                0.0,
            ),
            FleetJobRequest::new(
                "late",
                Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 12.0,
                },
                1.0,
            ),
        ])
        .unwrap();
    let early = report.tenant("early").unwrap();
    assert!(early.admitted);
    assert_eq!(early.execution.as_ref().unwrap().met_deadline, Some(true));
    let late = report.tenant("late").unwrap();
    // The late tenant's relaxed deadline lets it plan around the leftover
    // capacity.
    assert!(late.admitted, "late tenant rejected: {:?}", late.rejection);
    let exec = late.execution.as_ref().unwrap();
    assert_eq!(exec.met_deadline, Some(true));
    // Its plan really was squeezed: the peak is below the fleet cap minus
    // the early tenant's concurrent peak would allow at admission time.
    let late_peak = late.plan.as_ref().unwrap().peak_nodes("m1.large");
    assert!(late_peak <= 30, "late peak {late_peak}");
}
