//! Equivalence regression for the event-kernel engine refactor.
//!
//! The monolithic `Engine::run` loop was rewritten as wakeup handlers on
//! the `conductor-sim` kernel (PR 3). These values were captured from the
//! pre-refactor engine on the standard scenarios and pinned to 1e-9: the
//! refactor must reproduce the old reports bit for bit, and any future
//! engine change that moves them is a deliberate semantic change, not an
//! accident of event ordering.

use conductor_cloud::{catalog::mbps_to_gb_per_hour, Catalog};
use conductor_mapreduce::engine::{DeploymentOptions, Engine};
use conductor_mapreduce::scheduler::{LocalityScheduler, PlanFollowingScheduler};
use conductor_mapreduce::{DataLocation, Workload};

fn assert_close(label: &str, got: f64, pinned: f64) {
    assert!(
        (got - pinned).abs() < 1e-9,
        "{label}: got {got:.12}, pre-refactor engine produced {pinned:.12}"
    );
}

/// The §6.2 Conductor-style deployment: 16 m1.large nodes, streamed
/// processing onto instance disks, 16 Mbit/s uplink.
#[test]
fn conductor_cloud_only_report_is_bit_identical_to_pre_refactor() {
    let engine = Engine::new(Catalog::aws_with_local_cluster(5));
    let uplink = mbps_to_gb_per_hour(16.0);
    let options = DeploymentOptions {
        deadline_hours: Some(6.0),
        ..DeploymentOptions::new("conductor", uplink).with_nodes("m1.large", 16, 0.0)
    };
    let report = engine
        .run(
            &Workload::KMeans32Gb.spec(),
            &options,
            &PlanFollowingScheduler::cloud_only_defaults(),
        )
        .unwrap();

    assert_close("completion_hours", report.completion_hours, 5.052862288743);
    assert_close("total_cost", report.total_cost, 35.8784);
    assert_close("map_done_at", report.phases.map_done_at, 4.914231338990);
    assert_close(
        "reduce_done_at",
        report.phases.reduce_done_at,
        5.005140429899,
    );
    assert_close("upload_hours", report.phases.upload_hours, 4.772185884444);
    assert_close(
        "download_hours",
        report.phases.download_hours,
        0.047721858844,
    );
    assert_close("wan_in_gb", report.wan_in_gb, 32.0);
    assert_close("wan_out_gb", report.wan_out_gb, 0.32);
    assert_eq!(report.task_timeline.len(), 528);
    assert_eq!(report.met_deadline, Some(true));
}

/// The §6.2 "Hadoop S3" strategy: upload everything to S3 first, then 100
/// nodes burn through it (the roughly-double-cost case).
#[test]
fn hadoop_s3_report_is_bit_identical_to_pre_refactor() {
    let engine = Engine::new(Catalog::aws_with_local_cluster(5));
    let uplink = mbps_to_gb_per_hour(16.0);
    let upload_hours = 32.0 / uplink;
    let options = DeploymentOptions {
        upload_plan: vec![(DataLocation::S3, 1.0)],
        upload_before_processing: true,
        deadline_hours: Some(6.0),
        ..DeploymentOptions::new("hadoop-s3", uplink).with_nodes("m1.large", 100, upload_hours)
    };
    let report = engine
        .run(&Workload::KMeans32Gb.spec(), &options, &LocalityScheduler)
        .unwrap();

    assert_close("completion_hours", report.completion_hours, 6.128349301730);
    assert_close("total_cost", report.total_cost, 71.268980375570);
    assert_eq!(report.met_deadline, Some(false));
}

/// Two identical runs produce identical reports (the kernel's deterministic
/// event ordering end to end).
#[test]
fn repeated_runs_are_deterministic() {
    let engine = Engine::new(Catalog::aws_july_2011());
    let uplink = mbps_to_gb_per_hour(16.0);
    let options = DeploymentOptions {
        deadline_hours: Some(6.0),
        ..DeploymentOptions::new("det", uplink)
            .with_nodes("m1.large", 3, 0.0)
            .with_nodes("m1.large", 16, 1.0)
            .with_nodes("m1.large", 18, 2.0)
    };
    let spec = Workload::KMeans32Gb.spec();
    let sched = PlanFollowingScheduler::cloud_only_defaults();
    let a = engine.run(&spec, &options, &sched).unwrap();
    let b = engine.run(&spec, &options, &sched).unwrap();
    assert_eq!(a.completion_hours.to_bits(), b.completion_hours.to_bits());
    assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
    assert_eq!(a.task_timeline, b.task_timeline);
    assert_eq!(a.allocation_timeline, b.allocation_timeline);
}
