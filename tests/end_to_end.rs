//! End-to-end integration tests: planning, deployment and adaptation across
//! all crates, reproducing the qualitative claims of the paper's evaluation.

use conductor_cloud::{Catalog, CostCategory};
use conductor_core::{AdaptiveController, Goal, JobController, Planner, ResourcePool};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::time::Duration;

fn fast_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(60),
        ..Default::default()
    }
}

fn cloud_controller() -> JobController {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    JobController::new(
        catalog,
        Planner::new(pool).with_solve_options(fast_options()),
    )
    .expect("planner pool matches the catalog")
}

/// §6.2: Conductor meets the 6-hour deadline on the cloud-only scenario, its
/// measured cost is in the same range as the plan's expectation, and the cost
/// is dominated by EC2 computation (not storage or transfer).
#[test]
fn cloud_only_deployment_matches_paper_shape() {
    let outcome = cloud_controller()
        .run(
            &Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
        )
        .unwrap();
    assert_eq!(outcome.execution.met_deadline, Some(true));
    assert!(outcome.plan.expected_cost > 20.0 && outcome.plan.expected_cost < 45.0);
    let compute = outcome
        .execution
        .cost_breakdown
        .get(CostCategory::Computation);
    assert!(compute > 0.5 * outcome.execution.total_cost);
    // The plan keeps the data on EC2 instance disks, as the paper reports.
    let mix = outcome.plan.storage_mix();
    assert!(mix.get("EC2-disk").copied().unwrap_or(0.0) > 0.9, "{mix:?}");
}

/// §6.3 (Figure 10): in the hybrid scenario Conductor uses the free local
/// nodes, meets the 4-hour deadline, and costs less than a cloud-only run of
/// the same job under the same deadline.
#[test]
fn hybrid_deployment_uses_local_nodes_and_saves_money() {
    let catalog = Catalog::aws_with_local_cluster(5);
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large", "local"]);
    let controller = JobController::new(
        catalog,
        Planner::new(pool).with_solve_options(fast_options()),
    )
    .expect("planner pool matches the catalog");
    let spec = Workload::KMeans32Gb.spec();
    let hybrid = controller
        .run(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: 4.0,
            },
        )
        .unwrap();
    assert_eq!(hybrid.execution.met_deadline, Some(true));
    assert!(hybrid.plan.peak_nodes("local") > 0, "local nodes unused");

    // A cloud-only deployment cannot meet 4 hours at all (the 32 GB upload
    // alone takes ~4.6 h at 16 Mbit/s): only the hybrid's local nodes make
    // the deadline reachable.
    let cloud_catalog = Catalog::aws_july_2011();
    let cloud_pool =
        ResourcePool::from_catalog(&cloud_catalog, 1.0).with_compute_only(&["m1.large"]);
    let cloud_controller = JobController::new(
        cloud_catalog,
        Planner::new(cloud_pool).with_solve_options(fast_options()),
    )
    .expect("planner pool matches the catalog");
    assert!(
        cloud_controller
            .run(
                &spec,
                Goal::MinimizeCost {
                    deadline_hours: 4.0
                }
            )
            .is_err(),
        "cloud-only should be infeasible at 4 h"
    );
    // Even against a cloud-only run with a relaxed 6-hour deadline, the
    // hybrid plan (free local nodes, tighter deadline) is cheaper.
    let cloud_only = cloud_controller
        .run(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
        )
        .unwrap();
    assert!(
        hybrid.plan.expected_cost < cloud_only.plan.expected_cost,
        "hybrid {} vs cloud-only {}",
        hybrid.plan.expected_cost,
        cloud_only.plan.expected_cost
    );
}

/// §6.4 (Figure 12): with a 3.3x throughput misprediction, re-planning after
/// one hour rescues the deadline that a non-adaptive run misses.
#[test]
fn adaptation_rescues_mispredicted_deployment() {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let controller = AdaptiveController::new(catalog, pool).with_solve_options(fast_options());
    let report = controller
        .run_with_misprediction(
            &Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 7.0,
            },
            1.44,
            0.44,
            1.0,
        )
        .unwrap();
    assert!(report.adaptation_rescued_deadline());
    assert!(
        report.updated_plan.peak_nodes("m1.large") > report.initial_plan.peak_nodes("m1.large")
    );
}

/// A minimize-time goal under a generous budget finishes near the uplink
/// lower bound; tightening the budget can only lengthen the plan.
#[test]
fn minimize_time_budget_tradeoff() {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let planner = Planner::new(pool).with_solve_options(fast_options());
    let spec = Workload::KMeans32Gb.spec();
    let (rich, _) = planner
        .plan(
            &spec,
            Goal::MinimizeTime {
                budget_usd: 80.0,
                max_hours: 12.0,
            },
        )
        .unwrap();
    let (poor, _) = planner
        .plan(
            &spec,
            Goal::MinimizeTime {
                budget_usd: 30.0,
                max_hours: 12.0,
            },
        )
        .unwrap();
    assert!(rich.expected_completion_hours <= poor.expected_completion_hours + 1e-9);
    assert!(rich.expected_cost <= 80.0 + 1e-6);
    assert!(poor.expected_cost <= 30.0 + 1e-6);
}
