//! Checkpoint/resume and deterministic replay: the event log and the
//! snapshot are the source of truth.
//!
//! The headline battery proves that suspending a seeded churn session at
//! *every* event-batch boundary — checkpoint, serialize to JSON,
//! deserialize, restore, continue — reproduces the uninterrupted run bit
//! for bit (same event log, same report floats). A second battery proves
//! the persisted event log alone reconstructs the session:
//! `Fleet::replay` re-drives submissions from the log's own payloads and
//! verifies every regenerated event against the log as it goes.
//!
//! Wall-clock planner timings (`solve_time`/`model_build_time`) are the
//! only tolerated difference; everything else — billing floats, event
//! hours, retry/breaker/gate state — must match to the last bit.

use conductor_bench::experiments::{churn_fixture, faulted_churn_fixture, run_fleet_session};
use conductor_core::policy::FaultKind;
use conductor_core::{
    ConductorError, ConductorService, Fleet, FleetEvent, FleetJobRequest, FleetSnapshot, Goal,
    TenantId,
};
use conductor_mapreduce::Workload;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Serializes a report with the wall-clock planner timings removed (host
/// metadata, not simulation state); every simulated float participates
/// bit for bit via the renderer's injective shortest-round-trip output.
fn canonical_json(report: &conductor_core::FleetReport) -> String {
    fn strip(v: &mut serde_json::Json) {
        match v {
            serde_json::Json::Object(fields) => {
                fields.retain(|(k, _)| k != "solve_time" && k != "model_build_time");
                for (_, child) in fields.iter_mut() {
                    strip(child);
                }
            }
            serde_json::Json::Array(items) => items.iter_mut().for_each(strip),
            _ => {}
        }
    }
    let rendered = serde_json::to_string(report).unwrap();
    let mut v = serde_json::parse(&rendered).unwrap();
    strip(&mut v);
    serde_json::to_string(&v).unwrap()
}

/// Opens a session and submits every request up front (arrivals fire as
/// the clock reaches them). With the submissions done, the rest of the
/// session is pure event-loop work, so *every* remaining suspend point
/// is an event-batch boundary reachable via `step_one_batch`.
fn open_with(service: &ConductorService, requests: &[FleetJobRequest]) -> Fleet {
    let mut fleet = service.open().expect("fixture config is valid");
    for request in requests {
        fleet
            .submit(request.clone())
            .expect("fixture requests are valid");
    }
    fleet
}

/// Round-trips a checkpoint through its JSON codec and restores it — the
/// full suspend/resume path, not an in-memory shortcut.
fn suspend_resume(service: &ConductorService, fleet: &Fleet) -> Fleet {
    let json = fleet.checkpoint().to_json();
    let snapshot = FleetSnapshot::from_json(&json).expect("snapshot JSON round-trips");
    service.restore(&snapshot).expect("snapshot restores")
}

// ---- tentpole: every-boundary resume ---------------------------------

/// Suspend/resume at EVERY event-batch boundary of the seeded faulted
/// churn fixture (storms, injected faults, retries, breaker, admission
/// gate, plan cache all armed) reproduces the uninterrupted run bit for
/// bit.
#[test]
fn every_boundary_resume_reproduces_uninterrupted_run() {
    let (requests, service) = faulted_churn_fixture(8, 1.0);
    let service = service.with_plan_cache(true);

    let mut reference = open_with(&service, &requests);
    reference.run_to_quiescence();

    // Ping-pong: checkpoint → JSON → restore at every boundary, then
    // advance exactly one batch from the *restored* session. Every
    // boundary of the run is crossed by a resumed fleet.
    let mut fleet = open_with(&service, &requests);
    let mut boundaries = 0usize;
    loop {
        fleet = suspend_resume(&service, &fleet);
        if !fleet.step_one_batch() {
            break;
        }
        boundaries += 1;
    }
    fleet.run_to_quiescence();

    assert!(
        boundaries > 50,
        "fixture too small to exercise the battery: {boundaries} boundaries"
    );
    assert_eq!(
        fleet.events(),
        reference.events(),
        "event log diverged after {boundaries} suspend/resume cycles"
    );
    assert_eq!(
        canonical_json(&fleet.report()),
        canonical_json(&reference.report()),
        "report diverged after {boundaries} suspend/resume cycles"
    );
}

/// Resume-then-run-to-completion from a geometric sample of boundaries:
/// unlike the ping-pong above (which resumes at every boundary but only
/// steps one batch between resumes), each sampled run restores once and
/// then finishes uninterrupted — proving a single mid-session checkpoint
/// carries the whole tail.
#[test]
fn sampled_full_tail_resumes_match_reference() {
    let (requests, service) = churn_fixture(8, 1.0);

    let mut reference = open_with(&service, &requests);
    // Collect checkpoints at boundaries 1, 2, 4, 8, … while driving the
    // reference run itself (checkpoint is a pure read).
    let mut checkpoints: Vec<(usize, String)> = Vec::new();
    let mut batches = 0usize;
    let mut next_sample = 1usize;
    while reference.step_one_batch() {
        batches += 1;
        if batches == next_sample {
            checkpoints.push((batches, reference.checkpoint().to_json()));
            next_sample *= 2;
        }
    }
    reference.run_to_quiescence();
    let reference_events = reference.events().to_vec();
    let reference_report = canonical_json(&reference.report());

    assert!(
        checkpoints.len() >= 5,
        "only {} checkpoints",
        checkpoints.len()
    );
    for (boundary, json) in checkpoints {
        let snapshot = FleetSnapshot::from_json(&json).expect("snapshot JSON round-trips");
        let mut resumed = service.restore(&snapshot).expect("snapshot restores");
        while resumed.step_one_batch() {}
        resumed.run_to_quiescence();
        assert_eq!(
            resumed.events(),
            &reference_events[..],
            "event log diverged resuming from boundary {boundary}"
        );
        assert_eq!(
            canonical_json(&resumed.report()),
            reference_report,
            "report diverged resuming from boundary {boundary}"
        );
    }
}

// ---- tentpole: replay from the event log -----------------------------

/// Replays a finished session's log and checks the reconstruction is
/// exact: same events, same canonical report.
fn assert_replay_reproduces(service: &ConductorService, session: &Fleet) {
    let log = session.events();
    let mut replayed = service.replay(log).expect("log replays cleanly");
    // The live session ended quiescent; drain the replayed session's
    // trailing silent batches (events past the last *emission* — e.g.
    // superseded monitor ticks) the same way.
    replayed.run_to_quiescence();
    assert_eq!(replayed.events(), log, "replayed event log diverged");
    assert_eq!(
        canonical_json(&replayed.report()),
        canonical_json(&session.report()),
        "replayed report diverged"
    );
}

/// Replay-from-log equals live execution on the churn fixture (Poisson
/// arrivals, revocation storms, shared cap) driven online — submissions
/// re-driven from the log's own request payloads.
#[test]
fn replay_reproduces_online_churn_session() {
    let (requests, service) = churn_fixture(8, 1.0);
    let session = run_fleet_session(&service, &requests);
    assert_replay_reproduces(&service, &session);
}

/// Replay under the full failure policy: injected faults (salts recorded
/// on the log), retries, dead letters, admission gate, breaker.
#[test]
fn replay_reproduces_faulted_session() {
    let (requests, service) = faulted_churn_fixture(8, 1.0);
    let session = run_fleet_session(&service, &requests);
    assert_replay_reproduces(&service, &session);
}

/// Replay with the admission plan cache on: cache-served admissions
/// (keyed on the log) must reproduce identically from scratch.
#[test]
fn replay_reproduces_plan_cache_session() {
    let (requests, service) = churn_fixture(8, 1.0);
    let service = service.with_plan_cache(true);
    let session = run_fleet_session(&service, &requests);
    assert_replay_reproduces(&service, &session);
}

/// A mid-run cancellation is a client action the log must re-drive (the
/// `Cancelled` entry carries the tenant and hour — nothing else needed).
#[test]
fn replay_reproduces_cancellation() {
    let (requests, service) = churn_fixture(4, 1.0);
    let mut session = service.open().unwrap();
    for request in &requests {
        session.step_until(request.arrival_hours);
        session.submit(request.clone()).unwrap();
    }
    let victim = TenantId(1);
    session.step_until(requests[3].arrival_hours + 0.5);
    session.cancel(victim).unwrap();
    session.run_to_quiescence();
    assert!(session
        .events()
        .iter()
        .any(|e| matches!(e, FleetEvent::Cancelled { tenant, .. } if *tenant == victim)));
    assert_replay_reproduces(&service, &session);
}

/// A tampered log — an event the session would not produce — is detected
/// and named, not silently absorbed.
#[test]
fn replay_rejects_divergent_log() {
    let (requests, service) = churn_fixture(3, 1.0);
    let session = run_fleet_session(&service, &requests);
    let mut log = session.events().to_vec();
    // Falsify a non-client event's hour: replay regenerates the true one
    // and must refuse the log.
    let target = log
        .iter()
        .position(|e| matches!(e, FleetEvent::Admitted { .. }))
        .expect("fixture admits jobs");
    if let FleetEvent::Admitted { at_hours, .. } = &mut log[target] {
        *at_hours += 0.125;
    }
    let err = service.replay(&log).unwrap_err();
    assert!(matches!(err, ConductorError::InvalidInput(_)), "{err}");
    assert!(
        err.to_string().contains("replay diverged"),
        "unhelpful error: {err}"
    );
}

// ---- satellite: enriched event payloads ------------------------------

/// `Submitted` entries carry the full request — byte-identical to what
/// the client submitted, in submission order.
#[test]
fn submitted_events_embed_the_request() {
    let (requests, service) = churn_fixture(4, 1.0);
    let session = run_fleet_session(&service, &requests);
    let submitted: Vec<&FleetJobRequest> = session
        .events()
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Submitted { request, .. } => Some(request),
            _ => None,
        })
        .collect();
    assert_eq!(submitted.len(), requests.len());
    for (logged, original) in submitted.iter().zip(&requests) {
        assert_eq!(*logged, original);
    }
}

/// `FaultInjected` entries carry the fault plan's pre-drawn salt, so the
/// log records the complete victim-selection draw. The canonical faulted
/// fixture's plan is sparse (scaled for 200 jobs), so this pin uses a
/// dense plan aimed at the hours the small fleet is actually running.
#[test]
fn fault_events_carry_plan_salts() {
    use conductor_core::{FailurePolicy, FaultPlan, RetryPolicy};
    let (requests, service) = churn_fixture(4, 0.5);
    let service = service.with_failure_policy(FailurePolicy {
        fault_plan: Some(FaultPlan::seeded(9, 8.0, 6, 3)),
        retry: Some(RetryPolicy::default()),
        failure_threshold: None,
        circuit_breaker: None,
    });
    let session = run_fleet_session(&service, &requests);
    let plan_salts: Vec<u64> = service
        .config()
        .policy
        .fault_plan
        .as_ref()
        .expect("faulted fixture has a plan")
        .events
        .iter()
        .map(|e| e.salt)
        .collect();
    let mut seen = 0usize;
    for event in session.events() {
        if let FleetEvent::FaultInjected { salt, kind, .. } = event {
            assert!(
                plan_salts.contains(salt),
                "logged salt {salt} not in the fault plan"
            );
            assert!(matches!(
                kind,
                FaultKind::TaskFailure | FaultKind::NodeCrash
            ));
            seen += 1;
        }
    }
    assert!(seen > 0, "fixture injected no faults");
}

/// `Admitted` entries record the plan-cache key exactly when the fast
/// path decided: the count of keyed admissions equals the cache's hit
/// counter, and cache-off sessions never key an admission.
#[test]
fn admitted_events_record_cache_keys() {
    let (requests, service) = churn_fixture(8, 1.0);
    let cached = run_fleet_session(&service.clone().with_plan_cache(true), &requests);
    let keyed = cached
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                FleetEvent::Admitted {
                    cache_key: Some(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(keyed, cached.report().plan_cache_hits);
    assert!(keyed > 0, "fixture produced no cache hits");

    let uncached = run_fleet_session(&service, &requests);
    assert!(uncached.events().iter().all(|e| !matches!(
        e,
        FleetEvent::Admitted {
            cache_key: Some(_),
            ..
        }
    )));
}

// ---- satellite: serde round-trips ------------------------------------

fn sample_request() -> FleetJobRequest {
    FleetJobRequest::new(
        "rt-tenant",
        Workload::KMeansScaled { input_gb: 8 }.spec(),
        Goal::MinimizeCost {
            deadline_hours: 6.5,
        },
        1.25,
    )
    .with_spot_bid(0.285)
}

/// Every `FleetEvent` variant survives the JSON codec bit for bit —
/// including awkward floats (thirds, NaN-adjacent denormals are excluded
/// by submit-time guards, but non-dyadic fractions are everywhere).
#[test]
fn every_fleet_event_variant_roundtrips_through_json() {
    let t = TenantId(3);
    let third = 1.0 / 3.0;
    let events = vec![
        FleetEvent::Submitted {
            tenant: t,
            at_hours: 0.1 + 0.2, // 0.30000000000000004: codec must not round
            arrival_hours: third,
            request: sample_request(),
        },
        FleetEvent::Admitted {
            tenant: t,
            at_hours: third,
            cache_key: None,
        },
        FleetEvent::Planned {
            tenant: t,
            at_hours: third,
            expected_cost: 17.28,
            expected_completion_hours: 5.75,
        },
        FleetEvent::Rejected {
            tenant: t,
            at_hours: 2.0,
            reason: "no feasible plan".into(),
        },
        FleetEvent::Replanned {
            tenant: t,
            at_hours: 3.5,
        },
        FleetEvent::Revoked {
            tenant: t,
            at_hours: 4.0,
            nodes_killed: 12,
        },
        FleetEvent::StragglerExtended {
            tenant: t,
            at_hours: 5.0,
        },
        FleetEvent::Completed {
            tenant: t,
            at_hours: 6.0,
            met_deadline: Some(true),
        },
        FleetEvent::DeadlineMissed {
            tenant: t,
            at_hours: 6.0,
        },
        FleetEvent::Cancelled {
            tenant: t,
            at_hours: 7.0,
        },
        FleetEvent::Failed {
            tenant: t,
            at_hours: 8.0,
            reason: "stalled".into(),
        },
        FleetEvent::FaultInjected {
            tenant: t,
            at_hours: 9.0,
            kind: FaultKind::NodeCrash,
            nodes_killed: 3,
            salt: 0xDEAD_BEEF_CAFE_F00D, // > 2^53: exercises the string path
        },
        FleetEvent::Retried {
            tenant: TenantId(9),
            of: t,
            attempt: 2,
            at_hours: 10.0,
            arrival_hours: 10.5,
        },
        FleetEvent::DeadLettered {
            tenant: TenantId(9),
            at_hours: 11.0,
            attempts: 3,
            reason: "budget exhausted".into(),
        },
        FleetEvent::AdmissionPaused {
            at_hours: 12.0,
            failure_fraction: 2.0 / 3.0,
        },
        FleetEvent::AdmissionResumed {
            at_hours: 13.0,
            failure_fraction: 0.25,
        },
        FleetEvent::BreakerOpened {
            at_hours: 14.0,
            strikes: 4,
        },
        FleetEvent::BreakerHalfOpen { at_hours: 15.0 },
        FleetEvent::BreakerClosed { at_hours: 16.0 },
        FleetEvent::FallbackEngaged {
            tenant: t,
            at_hours: 17.0,
        },
        FleetEvent::MigratedOut {
            tenant: t,
            at_hours: 18.0 + third,
        },
        FleetEvent::MonitorAligned {
            at_hours: 19.0,
            arrival_hours: 19.0 + third,
        },
    ];
    for event in &events {
        let json = serde_json::to_string(event).unwrap();
        let back: FleetEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, event, "variant failed to round-trip: {json}");
        // Round-tripping the rendered text is a fixed point.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}

/// A cache-keyed `Admitted` round-trips (the key is an extra payload
/// struct with a `[u64; 5]` of float bit patterns — worth its own pin).
#[test]
fn cache_keyed_admission_roundtrips() {
    let (requests, service) = churn_fixture(8, 1.0);
    let session = run_fleet_session(&service.with_plan_cache(true), &requests);
    let keyed = session
        .events()
        .iter()
        .find(|e| {
            matches!(
                e,
                FleetEvent::Admitted {
                    cache_key: Some(_),
                    ..
                }
            )
        })
        .expect("fixture produced a cache hit");
    let json = serde_json::to_string(keyed).unwrap();
    let back: FleetEvent = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, keyed);
}

/// A mid-run snapshot (live executions, pending heap, solver context,
/// plan cache, market position) round-trips through JSON to the exact
/// same rendered string — the codec is a bijection on reachable state.
#[test]
fn snapshot_json_roundtrip_is_a_fixed_point() {
    let (requests, service) = faulted_churn_fixture(4, 1.0);
    let service = service.with_plan_cache(true);
    let mut fleet = open_with(&service, &requests);
    for _ in 0..40 {
        if !fleet.step_one_batch() {
            break;
        }
    }
    let json = fleet.checkpoint().to_json();
    let snapshot = FleetSnapshot::from_json(&json).expect("snapshot parses");
    assert_eq!(snapshot.to_json(), json);
}

/// Non-finite floats in positions that feed the event heap are rejected
/// at deserialization with the same `InvalidInput` class as the
/// submit-time guards — a tampered checkpoint cannot smuggle a NaN in.
#[test]
fn snapshot_rejects_non_finite_floats() {
    let (requests, service) = churn_fixture(3, 1.0);
    let fleet = open_with(&service, &requests);
    let json = fleet.checkpoint().to_json();

    // Tamper the first request's arrival hour into a NaN (the vendored
    // codec's non-finite sentinel is a quoted string).
    let requests_at = json.find("\"requests\":").expect("requests field");
    let key = "\"arrival_hours\":";
    let start = json[requests_at..].find(key).expect("arrival field") + requests_at + key.len();
    let end = json[start..].find([',', '}']).expect("value terminator") + start;
    let tampered = format!("{}\"NaN\"{}", &json[..start], &json[end..]);

    let err = FleetSnapshot::from_json(&tampered).unwrap_err();
    assert!(matches!(err, ConductorError::InvalidInput(_)), "{err}");
    assert!(
        err.to_string().contains("non-finite"),
        "unhelpful error: {err}"
    );
}

// ---- satellite: WAL integration --------------------------------------

/// End to end through the durable path: events → WAL file → torn tail →
/// recovery → replay of the committed prefix.
#[test]
fn wal_recovery_feeds_replay() {
    use conductor_core::{WalReader, WalWriter};

    let (requests, service) = churn_fixture(4, 1.0);
    let session = run_fleet_session(&service, &requests);

    let path = std::env::temp_dir().join(format!(
        "conductor-ckpt-test-{}-replay.wal",
        std::process::id()
    ));
    let mut wal = WalWriter::create(&path).unwrap();
    wal.log_all(session.events()).unwrap();
    drop(wal);

    // Clean read: full log, replays to the full session.
    let readout = WalReader::read(&path).unwrap();
    assert!(!readout.torn);
    assert_eq!(readout.events, session.events());
    assert_replay_reproduces(&service, &session);

    // Tear the tail mid-entry; recovery keeps the committed prefix, and
    // the prefix replays cleanly (replay regenerates the batch the torn
    // entry belonged to, so the recovered log is a prefix of the result).
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 17]).unwrap();
    let recovered = WalReader::recover(&path).unwrap();
    assert_eq!(recovered.len(), session.events().len() - 1);
    let replayed = service.replay(&recovered).unwrap();
    assert_eq!(&replayed.events()[..recovered.len()], &recovered[..]);
    std::fs::remove_file(&path).ok();
}

// ---- satellite: randomized boundaries on the full-size fixture -------

/// Reference for the 200-job randomized battery: total batch count, the
/// uninterrupted event log and canonical report (computed once).
fn churn_200_reference() -> &'static (usize, Vec<FleetEvent>, String) {
    static REFERENCE: OnceLock<(usize, Vec<FleetEvent>, String)> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let (requests, service) = faulted_churn_fixture(200, 1.0);
        let mut fleet = open_with(&service, &requests);
        let mut batches = 0usize;
        while fleet.step_one_batch() {
            batches += 1;
        }
        fleet.run_to_quiescence();
        (
            batches,
            fleet.events().to_vec(),
            canonical_json(&fleet.report()),
        )
    })
}

proptest! {
    // Literal case count on purpose: each case is a full 200-job churn
    // run, so the nightly `PROPTEST_CASES` multiplier (set for the cheap
    // property suites) must not apply. `PROPTEST_SEED` still varies the
    // sampled boundaries run to run.
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Suspend at a random batch boundary of the 200-job faulted churn
    /// fixture, round-trip the checkpoint through JSON, and finish from
    /// the restored session: the final log and report must match the
    /// uninterrupted reference bit for bit.
    #[test]
    #[ignore = "full-size fixture; run with --ignored in release mode"]
    fn faulted_churn_200_jobs_resumes_bitwise_from_random_boundaries(
        fraction in 0.0f64..1.0,
    ) {
        let (total, reference_events, reference_report) = churn_200_reference();
        let boundary = ((*total as f64) * fraction) as usize;

        let (requests, service) = faulted_churn_fixture(200, 1.0);
        let mut fleet = open_with(&service, &requests);
        for _ in 0..boundary {
            prop_assert!(fleet.step_one_batch(), "boundary {boundary} unreachable");
        }
        let json = fleet.checkpoint().to_json();
        let snapshot = FleetSnapshot::from_json(&json).expect("snapshot JSON round-trips");
        let mut resumed = service.restore(&snapshot).expect("snapshot restores");
        drop(fleet);
        while resumed.step_one_batch() {}
        resumed.run_to_quiescence();

        prop_assert_eq!(resumed.events(), &reference_events[..]);
        prop_assert_eq!(&canonical_json(&resumed.report()), reference_report);
    }
}
