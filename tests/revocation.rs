//! Spot revocation storms as first-class fleet events: out-bid hours
//! terminate running sessions on the shared clock, survivors re-plan
//! against the post-storm residual, and the whole thing stays bitwise
//! deterministic.
//!
//! The storm fixtures use hand-written price traces so the out-bid hours
//! sit exactly where the scenario needs them; the churn-scale determinism
//! test reuses the Poisson fixture from `conductor_bench::experiments`.

use conductor_bench::experiments::churn_fixture;
use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::{ConductorService, FleetJobRequest, FleetReport, Goal, ResourcePool};
use conductor_lp::SolveOptions;
use conductor_mapreduce::Workload;
use std::time::Duration;

fn fast_options() -> SolveOptions {
    SolveOptions {
        relative_gap: 0.02,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    }
}

/// A service over an explicit hourly price trace with the given fleet bid.
fn storm_service(prices: Vec<f64>, bid: f64, cap: usize) -> ConductorService {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", cap);
    ConductorService::new(catalog, pool)
        .with_solve_options(fast_options())
        .with_spot_market(SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, prices),
            0.34,
        ))
        .with_spot_bid(bid)
}

/// Cheap everywhere except a storm at hours `[storm_start, storm_end)`.
fn storm_prices(hours: usize, storm_start: usize, storm_end: usize) -> Vec<f64> {
    (0..hours)
        .map(|t| {
            if (storm_start..storm_end).contains(&t) {
                0.50
            } else {
                0.20
            }
        })
        .collect()
}

fn request(tenant: &str, deadline: f64) -> FleetJobRequest {
    FleetJobRequest::new(
        tenant,
        Workload::KMeans32Gb.spec(),
        Goal::MinimizeCost {
            deadline_hours: deadline,
        },
        0.0,
    )
}

fn bills_sum_to_fleet(report: &FleetReport) {
    let tenant_sum: f64 = report
        .tenants
        .iter()
        .filter_map(|t| t.execution.as_ref())
        .map(|e| e.total_cost)
        .sum();
    assert!(
        (report.fleet_cost - tenant_sum).abs() < 1e-9,
        "fleet {} vs tenant sum {}",
        report.fleet_cost,
        tenant_sum
    );
    assert!(
        (report.fleet_breakdown.total() - report.fleet_cost).abs() < 1e-9,
        "breakdown {} vs fleet {}",
        report.fleet_breakdown.total(),
        report.fleet_cost
    );
}

#[test]
fn total_storm_kills_every_node_and_the_job_still_finishes() {
    // The market spikes above the bid for hours [2, 4): every spot node is
    // terminated at hour 2 and nothing can be acquired until hour 4.
    let service = storm_service(storm_prices(48, 2, 4), 0.34, 100);
    let report = service.run(&[request("victim", 12.0)]).unwrap();

    let victim = report.tenant("victim").unwrap();
    assert!(victim.admitted);
    assert_eq!(
        victim.failure, None,
        "job should limp home, not die: {:?}",
        victim.failure
    );
    // The storm actually hit: nodes were revoked at hour 2 and only there
    // (once dead, later out-bid hours find nothing to kill).
    assert_eq!(victim.revoked_at_hours, vec![2.0]);
    let exec = victim.execution.as_ref().unwrap();
    // Every task finished despite losing the whole cluster mid-run.
    assert_eq!(
        exec.task_timeline.last().map(|&(_, c)| c),
        Some(exec.total_tasks)
    );
    // The blackout really suspended the fleet: no allocation sample inside
    // (2, 4) shows any node (the kill empties the cluster, and the out-bid
    // market refuses every re-acquisition until the price recovers).
    for &(t, n) in &exec.allocation_timeline {
        if t > 2.0 + 1e-9 && t < 4.0 - 1e-9 {
            assert_eq!(n, 0, "allocation {n} at hour {t} during the blackout");
        }
    }
    // The deadline verdict is honest either way; the accounting must add up.
    assert_eq!(report.jobs_completed, 1);
    bills_sum_to_fleet(&report);
}

#[test]
fn storm_with_slack_is_rescued_by_a_forced_replan() {
    // A 7-hour deadline forces the plan to field nodes from the start (the
    // upload alone takes ~4.8 h), so the [2, 3) storm is guaranteed to hit
    // a working cluster — and leaves enough slack for the monitor to
    // re-plan the victim against the post-storm residual and still make
    // the deadline.
    let service = storm_service(storm_prices(48, 2, 3), 0.34, 100);
    let report = service.run(&[request("rescued", 7.0)]).unwrap();
    let rescued = report.tenant("rescued").unwrap();
    assert_eq!(rescued.revoked_at_hours, vec![2.0]);
    assert!(
        !rescued.replanned_at_hours.is_empty(),
        "storm victim was never re-planned"
    );
    // The forced re-plan happens at a monitor tick after the storm.
    assert!(rescued.replanned_at_hours[0] >= 2.0);
    let exec = rescued.execution.as_ref().unwrap();
    assert_eq!(exec.met_deadline, Some(true), "{:?}", exec.completion_hours);
    bills_sum_to_fleet(&report);
}

#[test]
fn storms_hit_every_concurrent_tenant_and_bills_still_add_up() {
    // Tight deadlines keep both tenants' clusters busy through hour 3, so
    // the one-hour storm terminates sessions of *both* — one market event,
    // fleet-wide consequences.
    let service = storm_service(storm_prices(72, 3, 4), 0.34, 200);
    let report = service
        .run(&[request("a", 6.0), request("b", 7.0)])
        .unwrap();
    assert_eq!(report.jobs_admitted, 2);
    assert_eq!(report.jobs_completed, 2);
    for tenant in ["a", "b"] {
        let t = report.tenant(tenant).unwrap();
        assert_eq!(
            t.revoked_at_hours,
            vec![3.0],
            "{tenant}: {:?}",
            t.revoked_at_hours
        );
    }
    bills_sum_to_fleet(&report);
}

#[test]
fn storm_runs_are_bitwise_deterministic() {
    let run = || {
        storm_service(storm_prices(48, 2, 4), 0.34, 100)
            .run(&[request("victim", 12.0)])
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.fleet_cost.to_bits(), b.fleet_cost.to_bits());
    assert_eq!(a.makespan_hours.to_bits(), b.makespan_hours.to_bits());
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.revoked_at_hours, tb.revoked_at_hours);
        assert_eq!(ta.replanned_at_hours, tb.replanned_at_hours);
        match (&ta.execution, &tb.execution) {
            (Some(ea), Some(eb)) => {
                assert_eq!(ea.total_cost.to_bits(), eb.total_cost.to_bits());
                assert_eq!(ea.task_timeline, eb.task_timeline);
                assert_eq!(ea.allocation_timeline, eb.allocation_timeline);
            }
            _ => panic!("executions diverge"),
        }
    }
}

#[test]
fn churn_fleet_with_storms_is_bitwise_deterministic() {
    // Same seed + trace => bitwise-identical fleet bills across runs, at
    // churn scale with real revocation storms along the way.
    let run = || {
        let (requests, service) = churn_fixture(16, 1.0);
        service.run(&requests).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.fleet_cost.to_bits(), b.fleet_cost.to_bits());
    assert_eq!(a.makespan_hours.to_bits(), b.makespan_hours.to_bits());
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.admitted, tb.admitted);
        assert_eq!(ta.revoked_at_hours, tb.revoked_at_hours);
        assert_eq!(ta.replanned_at_hours, tb.replanned_at_hours);
        if let (Some(ea), Some(eb)) = (&ta.execution, &tb.execution) {
            assert_eq!(ea.total_cost.to_bits(), eb.total_cost.to_bits());
        }
    }
    bills_sum_to_fleet(&a);
}
